"""Static labeling of safe views (Section 4.3).

A view label ``phi_v(U) = {lambda*(S), I, O, Z}`` encodes all the
fine-grained dependency information that is specific to one view:

* ``lambda*`` — the full dependency assignment of the view (Lemma 1),
  extending the perceived dependencies ``lambda'`` to composite modules;
* ``I(k, i)`` — the reachability matrix from the inputs of production ``k``'s
  left-hand side to the inputs of its ``i``-th right-hand-side module;
* ``O(k, i)`` — the (reversed) reachability matrix from the outputs of the
  left-hand side to the outputs of the ``i``-th module;
* ``Z(k, i, j)`` — the reachability matrix from the outputs of the ``i``-th
  module to the inputs of the ``j``-th module.

All matrices are computed over the production's right-hand-side workflow
with ``lambda*`` as the per-module dependencies, and only for productions
retained by the view.

Three materialisation strategies are provided, matching the paper's
experimental variants (Sections 4.3 and 4.4.3):

* **DEFAULT** — materialise all ``I``/``O``/``Z`` matrices; recursion chain
  products are evaluated at query time by fast boolean exponentiation.
* **SPACE_EFFICIENT** — materialise only ``lambda*``; every access to ``I``,
  ``O`` or ``Z`` performs a graph search over the view of the specification.
* **QUERY_EFFICIENT** — additionally materialise, for every recursion and
  rotation, the cycle product, its power table (Lemma 5) and the prefix
  products, making chain evaluation a pure table lookup.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Mapping

from repro.analysis.reachability import WorkflowPortGraph
from repro.analysis.safety import full_dependency_matrices
from repro.core.preprocessing import GrammarIndex
from repro.errors import DecodingError, VisibilityError
from repro.matrices import BoolMatrix, MatrixPowerTable, chain_product
from repro.model.views import WorkflowView

__all__ = ["FVLVariant", "ViewLabel", "ViewLabeler", "EdgeMatrixSupplier"]

#: ``(function, cycle, rotation) -> matrix`` — how a chain product obtains the
#: per-edge I/O matrices; engine-level caches plug in memoized suppliers.
EdgeMatrixSupplier = Callable[[str, int, int], "BoolMatrix"]


class FVLVariant(Enum):
    """The three view-labeling strategies evaluated in the paper."""

    DEFAULT = "default"
    SPACE_EFFICIENT = "space-efficient"
    QUERY_EFFICIENT = "query-efficient"


class ViewLabel:
    """The static label ``phi_v(U)`` of one safe view.

    Instances are produced by :class:`ViewLabeler`; the decoding predicate
    (:mod:`repro.core.decoder`) consumes them through the accessors below.
    """

    def __init__(
        self,
        index: GrammarIndex,
        view: WorkflowView,
        variant: FVLVariant,
        lam_star: Mapping[str, BoolMatrix],
        retained_productions: frozenset[int],
    ) -> None:
        self._index = index
        self._view = view
        self._variant = variant
        self._lam_star = dict(lam_star)
        self._retained = retained_productions
        self._inputs: dict[tuple[int, int], BoolMatrix] = {}
        self._outputs: dict[tuple[int, int], BoolMatrix] = {}
        self._z: dict[tuple[int, int, int], BoolMatrix] = {}
        self._retained_cycles: frozenset[int] = frozenset(
            s
            for s in range(1, index.n_cycles + 1)
            if all(edge.production in retained_productions for edge in index.cycle(s))
        )
        # Query-efficient extras: per (function, cycle, rotation) power tables
        # and prefix products.
        self._power_tables: dict[tuple[str, int, int], MatrixPowerTable] = {}
        self._prefix_products: dict[tuple[str, int, int], list[BoolMatrix]] = {}

        if variant is not FVLVariant.SPACE_EFFICIENT:
            self._materialise_matrices()
        if variant is FVLVariant.QUERY_EFFICIENT:
            self._materialise_power_tables()

    # -- basic accessors ----------------------------------------------------------

    @property
    def view(self) -> WorkflowView:
        return self._view

    @property
    def variant(self) -> FVLVariant:
        return self._variant

    @property
    def index(self) -> GrammarIndex:
        return self._index

    @property
    def retained_productions(self) -> frozenset[int]:
        return self._retained

    @property
    def retained_cycles(self) -> frozenset[int]:
        return self._retained_cycles

    def lam_star(self, module_name: str) -> BoolMatrix:
        """The full-dependency matrix of a module under this view."""
        try:
            return self._lam_star[module_name]
        except KeyError:
            raise VisibilityError(
                f"module {module_name!r} is not derivable in view {self._view.name!r}"
            ) from None

    def lam_star_start(self) -> BoolMatrix:
        """``lambda*(S)``: inputs-to-outputs reachability of the start module."""
        return self.lam_star(self._index.grammar.start)

    # -- definedness (used for visibility checks) --------------------------------------

    def is_retained_production(self, k: int) -> bool:
        return k in self._retained

    def is_retained_cycle(self, s: int) -> bool:
        return s in self._retained_cycles

    def is_defined_edge(self, k: int, i: int) -> bool:
        """Whether the view label's functions are defined for edge ``(k, i)``."""
        return k in self._retained and self._index.production_graph.has_edge(k, i)

    def is_defined_recursion(self, s: int, t: int, i: int) -> bool:
        """Whether the chain products for ``(s, t, i)`` are defined in this view.

        The unfolding to the ``i``-th chain member uses the productions of the
        cycle edges at rotations ``t .. t+i-2``; all of them must be retained.
        """
        if not 1 <= s <= self._index.n_cycles:
            return False
        length = self._index.cycle_length(s)
        needed = min(max(i - 1, 0), length)
        for offset in range(needed):
            edge = self._index.cycle_edge(s, t + offset)
            if edge.production not in self._retained:
                return False
        return True

    # -- the I / O / Z functions ----------------------------------------------------------

    def inputs(self, k: int, i: int) -> BoolMatrix:
        """``I(k, i)``: inputs of production ``k``'s LHS -> inputs of its ``i``-th module."""
        self._require_edge(k, i)
        if self._variant is FVLVariant.SPACE_EFFICIENT:
            return self._compute_production_matrices(k)[0][(k, i)]
        return self._inputs[(k, i)]

    def outputs(self, k: int, i: int) -> BoolMatrix:
        """``O(k, i)``: outputs of the LHS <- outputs of the ``i``-th module (reversed)."""
        self._require_edge(k, i)
        if self._variant is FVLVariant.SPACE_EFFICIENT:
            return self._compute_production_matrices(k)[1][(k, i)]
        return self._outputs[(k, i)]

    def z(self, k: int, i: int, j: int) -> BoolMatrix:
        """``Z(k, i, j)``: outputs of the ``i``-th module -> inputs of the ``j``-th module."""
        self._require_edge(k, i)
        self._require_edge(k, j)
        module_i = self._index.edge_target_module(k, i)
        module_j = self._index.edge_target_module(k, j)
        if i >= j:
            return BoolMatrix.zeros(module_i.n_outputs, module_j.n_inputs)
        if self._variant is FVLVariant.SPACE_EFFICIENT:
            return self._compute_production_matrices(k)[2][(k, i, j)]
        return self._z[(k, i, j)]

    def production_matrices(
        self, k: int
    ) -> tuple[
        dict[tuple[int, int], BoolMatrix],
        dict[tuple[int, int], BoolMatrix],
        dict[tuple[int, int, int], BoolMatrix],
    ]:
        """All ``I``/``O``/``Z`` matrices of one retained production.

        For the space-efficient variant this recomputes them with a graph
        search over the production body — the variant's defining trade-off.
        Callers that answer many queries against the same view (e.g.
        :class:`repro.engine.QueryEngine`) memoize the returned triple so the
        search runs once per production rather than once per matrix access.
        """
        if k not in self._retained:
            raise VisibilityError(
                f"production {k} is not retained by view {self._view.name!r}"
            )
        if self._variant is FVLVariant.SPACE_EFFICIENT:
            return self._compute_production_matrices(k)
        positions = range(1, len(self._index.production(k).rhs) + 1)
        inputs = {(k, i): self._inputs[(k, i)] for i in positions}
        outputs = {(k, i): self._outputs[(k, i)] for i in positions}
        z = {
            (k, i, j): self._z[(k, i, j)]
            for i in positions
            for j in positions
            if i < j
        }
        return inputs, outputs, z

    # -- recursion chain products (Algorithm 1) ---------------------------------------------

    def inputs_chain(self, s: int, t: int, count: int) -> BoolMatrix:
        """Product of ``count`` consecutive ``I`` matrices along cycle ``s`` from rotation ``t``.

        This is the quantity computed by Algorithm 1 for a recursion edge
        label ``(s, t, count + 1)``: the reachability matrix from the inputs
        of the first chain member to the inputs of member ``count + 1``.
        """
        return self.chain("I", s, t, count)

    def outputs_chain(self, s: int, t: int, count: int) -> BoolMatrix:
        """Product of ``count`` consecutive ``O`` matrices along cycle ``s`` from rotation ``t``."""
        return self.chain("O", s, t, count)

    def chain(
        self,
        function: str,
        s: int,
        t: int,
        count: int,
        *,
        edge_matrix: "EdgeMatrixSupplier | None" = None,
    ) -> BoolMatrix:
        """Chain product with a pluggable per-edge matrix supplier.

        ``edge_matrix(function, s, rotation)`` defaults to this label's own
        accessors; an engine-level cache substitutes memoized matrices so the
        space-efficient variant does not re-run its graph search per edge.
        """
        if count < 0:
            raise DecodingError("chain length cannot be negative")
        if not self.is_defined_recursion(s, t, count + 1):
            raise VisibilityError(
                f"recursion (cycle {s}, rotation {t}) is not fully retained by "
                f"view {self._view.name!r}"
            )
        if edge_matrix is None:
            edge_matrix = self._edge_matrix
        t = self._index.normalize_rotation(s, t)
        start_module = self._index.chain_member_module(s, t, 1)
        identity_size = (
            start_module.n_inputs if function == "I" else start_module.n_outputs
        )
        if count == 0:
            return BoolMatrix.identity(identity_size)
        length = self._index.cycle_length(s)
        if (
            self._variant is FVLVariant.QUERY_EFFICIENT
            and (function, s, t) in self._power_tables
        ):
            full_turns, remainder = divmod(count, length)
            prefix = self._prefix_products[(function, s, t)][remainder]
            if full_turns == 0:
                return prefix
            power = self._power_tables[(function, s, t)].power(full_turns)
            return power @ prefix
        if count <= length:
            return chain_product(
                [edge_matrix(function, s, t + a) for a in range(count)],
                identity_size=identity_size,
            )
        full_turns, remainder = divmod(count, length)
        prefix = chain_product(
            [edge_matrix(function, s, t + a) for a in range(remainder)],
            identity_size=identity_size,
        )
        full = chain_product(
            [edge_matrix(function, s, t + a) for a in range(length)],
            identity_size=identity_size,
        )
        power = full.power(full_turns)
        return power @ prefix

    def _edge_matrix(self, function: str, s: int, rotation: int) -> BoolMatrix:
        edge = self._index.cycle_edge(s, rotation)
        if function == "I":
            return self.inputs(edge.production, edge.position)
        return self.outputs(edge.production, edge.position)

    # -- sizes ---------------------------------------------------------------------------------

    def size_bits(self) -> int:
        """Number of bits needed to materialise this view label."""
        bits = self.lam_star_start().bits()
        if self._variant is FVLVariant.SPACE_EFFICIENT:
            # Only the full dependency assignment is stored.
            return sum(m.bits() for m in self._lam_star.values())
        bits += sum(m.bits() for m in self._inputs.values())
        bits += sum(m.bits() for m in self._outputs.values())
        bits += sum(m.bits() for m in self._z.values())
        if self._variant is FVLVariant.QUERY_EFFICIENT:
            bits += sum(t.bits() for t in self._power_tables.values())
            bits += sum(
                m.bits()
                for products in self._prefix_products.values()
                for m in products
            )
        return bits

    def size_bytes(self) -> float:
        return self.size_bits() / 8.0

    # -- internals --------------------------------------------------------------------------------

    def _require_edge(self, k: int, i: int) -> None:
        if k not in self._retained:
            raise VisibilityError(
                f"production {k} is not retained by view {self._view.name!r}"
            )
        if not self._index.production_graph.has_edge(k, i):
            raise DecodingError(f"no production-graph edge ({k}, {i})")

    def _compute_production_matrices(
        self, k: int
    ) -> tuple[
        dict[tuple[int, int], BoolMatrix],
        dict[tuple[int, int], BoolMatrix],
        dict[tuple[int, int, int], BoolMatrix],
    ]:
        """Compute I/O/Z for one production by a graph search over its RHS."""
        production = self._index.production(k)
        rhs = production.rhs
        graph = WorkflowPortGraph(rhs, self._lam_star)
        lhs = production.lhs
        lhs_input_ports = [
            ("in",) + production.rhs_initial_input(x)
            for x in range(1, lhs.n_inputs + 1)
        ]
        lhs_output_ports = [
            ("out",) + production.rhs_final_output(y)
            for y in range(1, lhs.n_outputs + 1)
        ]
        inputs: dict[tuple[int, int], BoolMatrix] = {}
        outputs: dict[tuple[int, int], BoolMatrix] = {}
        z: dict[tuple[int, int, int], BoolMatrix] = {}
        positions = list(range(1, len(rhs) + 1))
        occ_inputs: dict[int, list] = {}
        occ_outputs: dict[int, list] = {}
        for i in positions:
            occ_id = rhs.occurrence_at(i)
            module = rhs.module_of(occ_id)
            occ_inputs[i] = [("in", occ_id, p) for p in range(1, module.n_inputs + 1)]
            occ_outputs[i] = [("out", occ_id, p) for p in range(1, module.n_outputs + 1)]
        for i in positions:
            inputs[(k, i)] = graph.matrix_between(lhs_input_ports, occ_inputs[i])
            # O(k, i): rows indexed by LHS outputs, columns by module outputs,
            # true when the LHS output is reachable FROM the module output.
            outputs[(k, i)] = graph.matrix_between(
                occ_outputs[i], lhs_output_ports
            ).transpose()
        for i in positions:
            for j in positions:
                if i < j:
                    z[(k, i, j)] = graph.matrix_between(occ_outputs[i], occ_inputs[j])
        return inputs, outputs, z

    def _materialise_matrices(self) -> None:
        for k in sorted(self._retained):
            inputs, outputs, z = self._compute_production_matrices(k)
            self._inputs.update(inputs)
            self._outputs.update(outputs)
            self._z.update(z)

    def _materialise_power_tables(self) -> None:
        for s in sorted(self._retained_cycles):
            length = self._index.cycle_length(s)
            for t in range(1, length + 1):
                for function in ("I", "O"):
                    matrices = [
                        self._edge_matrix(function, s, t + a) for a in range(length)
                    ]
                    start_module = self._index.chain_member_module(s, t, 1)
                    identity_size = (
                        start_module.n_inputs
                        if function == "I"
                        else start_module.n_outputs
                    )
                    full = chain_product(matrices, identity_size=identity_size)
                    self._power_tables[(function, s, t)] = MatrixPowerTable(full)
                    prefixes = [BoolMatrix.identity(identity_size)]
                    running = BoolMatrix.identity(identity_size)
                    for matrix in matrices[:-1]:
                        running = running @ matrix
                        prefixes.append(running)
                    self._prefix_products[(function, s, t)] = prefixes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ViewLabel(view={self._view.name!r}, variant={self._variant.value}, "
            f"productions={sorted(self._retained)})"
        )


class ViewLabeler:
    """Builds :class:`ViewLabel` objects for safe views (static labeling)."""

    def __init__(self, index: GrammarIndex) -> None:
        self._index = index

    def label(
        self, view: WorkflowView, variant: FVLVariant = FVLVariant.DEFAULT
    ) -> ViewLabel:
        """Label one view.

        The view's full dependency assignment is computed first; an
        :class:`~repro.errors.UnsafeWorkflowError` is raised if the view is
        unsafe (unsafe views admit no dynamic labeling at all, Theorem 1).
        """
        grammar = self._index.grammar
        restricted = view.restricted_grammar(grammar)
        lam_star = full_dependency_matrices(restricted, view.dependencies)
        retained = frozenset(
            k
            for k, production in enumerate(grammar.productions, start=1)
            if production.lhs.name in restricted.composite_modules
        )
        return ViewLabel(self._index, view, variant, lam_star, retained)
