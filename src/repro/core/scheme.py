"""The FVL facade: a view-adaptive dynamic labeling scheme (Definition 11).

:class:`FVLScheme` bundles the three components of the scheme for one
specification:

* ``phi_r`` — the dynamic run labeler (:meth:`FVLScheme.label_run`), which
  labels data items as they are produced, independently of any view;
* ``phi_v`` — the static view labeler (:meth:`FVLScheme.label_view`), which
  labels a safe view once, when it is created;
* ``pi`` — the decoding predicate (:meth:`FVLScheme.depends`), which answers
  a reachability query from two data labels and one view label in constant
  time.

The scheme requires a strictly linear-recursive grammar (Theorem 8); the
basic (single-view) dynamic labeling scheme of Theorem 1/Theorem 8 is
recovered by labeling the default view and pairing it with every data label
(:meth:`FVLScheme.basic_scheme_depends`).
"""

from __future__ import annotations

from repro.core.decoder import depends as _depends
from repro.core.labels import DataLabel
from repro.core.matrix_free import (
    MatrixFreeViewLabel,
    build_matrix_free_label,
    depends_matrix_free,
)
from repro.core.preprocessing import GrammarIndex
from repro.core.run_labeler import RunLabeler
from repro.core.view_label import FVLVariant, ViewLabel, ViewLabeler
from repro.core.visibility import is_visible as _is_visible
from repro.errors import DecodingError
from repro.model.derivation import Derivation
from repro.model.grammar import WorkflowGrammar
from repro.model.specification import WorkflowSpecification
from repro.model.views import WorkflowView, default_view

__all__ = ["FVLScheme", "FVLVariant"]


class FVLScheme:
    """Fine-grained View-adaptive Labeling for one workflow specification."""

    def __init__(self, source: WorkflowSpecification | WorkflowGrammar) -> None:
        if isinstance(source, WorkflowSpecification):
            self._specification: WorkflowSpecification | None = source
            grammar = source.grammar
        elif isinstance(source, WorkflowGrammar):
            self._specification = None
            grammar = source
        else:  # pragma: no cover - defensive
            raise TypeError("FVLScheme expects a specification or a grammar")
        self._index = GrammarIndex(grammar)
        self._view_labeler = ViewLabeler(self._index)

    # -- accessors ---------------------------------------------------------------

    @property
    def index(self) -> GrammarIndex:
        return self._index

    @property
    def grammar(self) -> WorkflowGrammar:
        return self._index.grammar

    @property
    def specification(self) -> WorkflowSpecification | None:
        return self._specification

    # -- phi_r: dynamic labeling of runs -------------------------------------------

    def run_labeler(self, *, columnar: bool = True, path_table=None) -> RunLabeler:
        """A fresh run labeler (to be attached to a derivation manually)."""
        return RunLabeler(self._index, columnar=columnar, path_table=path_table)

    def label_run(
        self, derivation: Derivation, *, columnar: bool = True, path_table=None
    ) -> RunLabeler:
        """Label a derivation: past events are replayed, future ones streamed.

        ``columnar=False`` selects the legacy per-item value-object label
        representation instead of the columnar :class:`~repro.store.LabelStore`
        (only useful for comparisons; the answers are identical).  Passing a
        shared ``path_table`` interns this run's paths in an existing arena so
        path ids are comparable across runs (the query engine does this for
        its shards).
        """
        return RunLabeler(
            self._index, columnar=columnar, path_table=path_table
        ).attach(derivation)

    # -- phi_v: static labeling of views --------------------------------------------

    def label_view(
        self, view: WorkflowView, variant: FVLVariant = FVLVariant.DEFAULT
    ) -> ViewLabel:
        """Label a safe view (raises UnsafeWorkflowError for unsafe views)."""
        return self._view_labeler.label(view, variant)

    def label_view_matrix_free(self, view: WorkflowView) -> MatrixFreeViewLabel:
        """Label a coarse-grained (black-box) view with the matrix-free encoding."""
        return build_matrix_free_label(self._index, view)

    def label_default_view(
        self, variant: FVLVariant = FVLVariant.DEFAULT
    ) -> ViewLabel:
        """Label the default view ``(Delta, lambda)`` of the specification."""
        if self._specification is None:
            raise DecodingError(
                "the scheme was built from a bare grammar; construct it from a "
                "WorkflowSpecification to label the default view"
            )
        return self.label_view(default_view(self._specification), variant)

    # -- pi: the decoding predicate -----------------------------------------------------

    def depends(
        self,
        label1: DataLabel,
        label2: DataLabel,
        view_label: ViewLabel | MatrixFreeViewLabel,
    ) -> bool:
        """Whether the item labelled ``label2`` depends on the one labelled ``label1``."""
        if isinstance(view_label, MatrixFreeViewLabel):
            return depends_matrix_free(label1, label2, view_label)
        return _depends(label1, label2, view_label)

    def is_visible(
        self, data_label: DataLabel, view_label: ViewLabel | MatrixFreeViewLabel
    ) -> bool:
        """Whether the labelled data item is visible in the view (Section 5)."""
        return _is_visible(data_label, view_label)

    # -- the basic (non-view-adaptive) scheme of Section 3 --------------------------------

    def basic_scheme_depends(
        self, label1: DataLabel, label2: DataLabel, default_view_label: ViewLabel
    ) -> bool:
        """The basic dynamic labeling predicate of Theorems 1 and 8.

        The conversion described in the proofs of Theorem 1/8: pair every data
        label with the label of the default view and evaluate the ternary
        predicate.
        """
        return self.depends(label1, label2, default_view_label)
