"""Data labels (Section 4.2.2): edge labels, port labels and data labels.

A *data label* is the pair of labels of the two ports a data item connects.
Each *port label* consists of the path (a sequence of *edge labels*) from the
root of the compressed parse tree to the node of the module where the port
was first created, followed by the port index.  Edge labels come in two
flavours:

* ``(k, i)`` — a :class:`ProductionEdgeLabel`: the edge of the production
  graph from the ``k``-th production's left-hand side to the ``i``-th module
  of its right-hand side;
* ``(s, t, i)`` — a :class:`RecursionEdgeLabel`: the ``i``-th child of a
  recursive parse-tree node that unfolds cycle ``s`` starting at rotation
  ``t``.

Labels are immutable value objects; once assigned to a data item they are
never modified (Definition 10 forbids it).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "EdgeLabel",
    "ProductionEdgeLabel",
    "RecursionEdgeLabel",
    "PortLabel",
    "DataLabel",
    "common_prefix_length",
]


class EdgeLabel:
    """Base class for compressed-parse-tree edge labels."""

    __slots__ = ()


@dataclass(frozen=True)
class ProductionEdgeLabel(EdgeLabel):
    """Edge label ``(k, i)``: production ``k``, RHS position ``i`` (both 1-based)."""

    k: int
    i: int

    def as_tuple(self) -> tuple[int, int]:
        return (self.k, self.i)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.k},{self.i})"


@dataclass(frozen=True)
class RecursionEdgeLabel(EdgeLabel):
    """Edge label ``(s, t, i)``: cycle ``s`` unfolded from rotation ``t``, child ``i``."""

    s: int
    t: int
    i: int

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.s, self.t, self.i)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.s},{self.t},{self.i})"


@dataclass(frozen=True)
class PortLabel:
    """The label of one port: the tree path to its module plus the port index."""

    path: tuple[EdgeLabel, ...]
    port: int

    def as_tuple(self) -> tuple:
        return tuple(e.as_tuple() for e in self.path) + (self.port,)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(e) for e in self.path)
        return f"{{{inner}, {self.port}}}" if inner else f"{{{self.port}}}"


@dataclass(frozen=True)
class DataLabel:
    """The label of one data item: producer (output) and consumer (input) port labels.

    ``producer`` is ``None`` for initial inputs of the run, ``consumer`` is
    ``None`` for final outputs — matching the paper's ``(-, phi(i))`` and
    ``(phi(o), -)`` notation.
    """

    producer: PortLabel | None
    consumer: PortLabel | None

    @property
    def is_initial_input(self) -> bool:
        return self.producer is None

    @property
    def is_final_output(self) -> bool:
        return self.consumer is None

    @property
    def is_intermediate(self) -> bool:
        return self.producer is not None and self.consumer is not None

    def shared_prefix_length(self) -> int:
        """Length of the common path prefix of the two port labels.

        The producer and consumer ports of a data item are created by the
        same production, so their paths differ only in the last one or two
        edge labels; factoring out the common prefix is what lets the codec
        store the label in roughly half the space (Section 4.2.2).
        """
        if self.producer is None or self.consumer is None:
            return 0
        return common_prefix_length(self.producer.path, self.consumer.path)

    def paths(self) -> list[tuple[EdgeLabel, ...]]:
        """The non-null port-label paths (used by visibility checks)."""
        result = []
        if self.producer is not None:
            result.append(self.producer.path)
        if self.consumer is not None:
            result.append(self.consumer.path)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        producer = repr(self.producer) if self.producer is not None else "-"
        consumer = repr(self.consumer) if self.consumer is not None else "-"
        return f"({producer}, {consumer})"


def common_prefix_length(
    path_a: tuple[EdgeLabel, ...], path_b: tuple[EdgeLabel, ...]
) -> int:
    """Number of leading edge labels shared by two paths."""
    count = 0
    for edge_a, edge_b in zip(path_a, path_b):
        if edge_a != edge_b:
            break
        count += 1
    return count
