"""Data-visibility checks (Section 5, last paragraph).

Using only a data label and a view label, one can decide in constant time
whether the data item is visible in the projected run ``R_U``: the item is
visible iff every edge label occurring in its port-label paths refers to a
production (or to recursion-cycle productions) retained by the view — that
is, iff the view label's ``I`` function is defined for all of them.

:func:`is_visible` is the original per-label-object predicate.  For runs
held in a columnar :class:`~repro.store.LabelStore`, the same test runs over
the packed columns with no label objects at all: visibility is a property of
a *path*, paths are interned once per run, and children follow parents in id
order — so :func:`path_visibility` folds the retained-production test over
the whole trie in one forward pass, and :func:`visible_batch` /
:func:`visible_mask` answer per-item queries as two flag lookups per row.
"""

from __future__ import annotations

import numpy as np

from repro.core.labels import DataLabel, ProductionEdgeLabel, RecursionEdgeLabel
from repro.errors import DecodingError
from repro.store.path_table import _FIELD_MASK, KIND_PRODUCTION, KIND_ROOT

__all__ = ["is_visible", "path_visibility", "visible_batch", "visible_mask"]


def is_visible(data_label: DataLabel, view_label) -> bool:
    """Whether the labelled data item is visible in the view.

    ``view_label`` may be a :class:`~repro.core.view_label.ViewLabel` or a
    :class:`~repro.core.matrix_free.MatrixFreeViewLabel`; only its
    retained-production information is consulted.
    """
    index = view_label.index
    retained = view_label.retained_productions
    for path in data_label.paths():
        for edge in path:
            if isinstance(edge, ProductionEdgeLabel):
                if edge.k not in retained:
                    return False
            elif isinstance(edge, RecursionEdgeLabel):
                length = index.cycle_length(edge.s)
                needed = min(max(edge.i - 1, 0), length)
                for offset in range(needed):
                    cycle_edge = index.cycle_edge(edge.s, edge.t + offset)
                    if cycle_edge.production not in retained:
                        return False
            else:  # pragma: no cover - defensive
                raise DecodingError(f"unknown edge label {edge!r}")
    return True


# ---------------------------------------------------------------------------
# columnar visibility (no label objects)
# ---------------------------------------------------------------------------


def _recursion_retained(index, retained, s: int, t: int, i: int) -> bool:
    """The recursion-edge half of the Section 5 test, on raw ``(s, t, i)``."""
    length = index.cycle_length(s)
    needed = min(max(i - 1, 0), length)
    for offset in range(needed):
        if index.cycle_edge(s, t + offset).production not in retained:
            return False
    return True


def _edge_retained(table, path_id: int, view_label, rec_memo: dict) -> bool:
    """Whether the *last* edge of one interned path is retained by the view."""
    kind, a, b, c = table.edge_fields(path_id)
    if kind == KIND_ROOT:
        return True
    if kind == KIND_PRODUCTION:
        return a in view_label.retained_productions
    key = (a, b, c)
    ok = rec_memo.get(key)
    if ok is None:
        ok = rec_memo[key] = _recursion_retained(
            view_label.index, view_label.retained_productions, a, b, c
        )
    return ok


def _column_slice_array(column, start: int, stop: int, dtype) -> np.ndarray:
    """A contiguous ndarray of ``column[start:stop]`` for any column kind.

    Live tables keep plain lists (or packed ``array`` buffers) and mapped
    single-extent tables numpy views; multi-segment mapped columns expose a
    cached ``concatenated()`` flat array, which beats their per-index
    chunk-bisect slicing by orders of magnitude for a whole-trie pass.
    """
    if isinstance(column, np.ndarray):
        return column[start:stop]
    concatenated = getattr(column, "concatenated", None)
    if concatenated is not None:
        return concatenated()[start:stop]
    return np.asarray(column[start:stop], dtype=dtype)


def path_visibility(table, view_label, *, prefix: "np.ndarray | None" = None) -> np.ndarray:
    """Per-path-id visibility flags over a :class:`~repro.store.PathTable`.

    ``flags[p]`` is True iff every edge on path ``p`` refers to productions
    retained by ``view_label`` — i.e. iff a port whose label path is ``p``
    belongs to a visible item.  The per-edge retained test is vectorised
    straight off the packed trie columns (production edges, the vast
    majority, are one mask-and-``isin`` pass; the bounded set of distinct
    recursion edges is resolved scalar-ly with a memo), and a child's id is
    always greater than its parent's, so the remaining AND-fold is one
    forward pass.  Works on live, compacted and mapped tables alike and
    never materialises an edge tuple.

    ``prefix`` is an earlier result for the same ``(table, view_label)``
    pair: the trie is append-only, so the old flags are reused verbatim and
    only rows interned since are computed (the engine memoizes per decoded
    view this way — repeated visibility queries cost O(new paths), not
    O(trie)).  A prefix longer than the table is rejected as a misuse.
    """
    parent, packed, c = table.raw_columns()
    # Appends are parent-first (parent, then packed, then c), so under a
    # concurrent intern the columns can differ in length for an instant;
    # clamp to the shortest so the fold only covers fully-appended rows —
    # the torn tail simply lands in the next flags extension.
    n = min(len(parent), len(packed), len(c))
    if n == 0:
        return np.zeros(0, dtype=bool)
    start = 1
    vis: list = [True]
    if prefix is not None:
        if len(prefix) > n:
            raise DecodingError(
                "path-visibility prefix is longer than the trie; it belongs "
                "to a different table"
            )
        if len(prefix) == n:
            return prefix
        if len(prefix) > 1:
            start = len(prefix)
            vis = prefix.tolist()
    if start >= n:
        return np.asarray(vis, dtype=bool)

    packed_arr = _column_slice_array(packed, start, n, np.int64)
    # Production edges (kind bit 0): retained iff k is a retained production.
    edge_ok = np.zeros(n - start, dtype=bool)
    production = (packed_arr & 1) == KIND_PRODUCTION
    retained = view_label.retained_productions
    if retained:
        k = (packed_arr >> 1) & _FIELD_MASK
        edge_ok[production] = np.isin(
            k[production], np.fromiter(retained, dtype=np.int64, count=len(retained))
        )
    # Recursion edges: few distinct (s, t, i) triples; scalar test, memoized.
    recursion_rows = np.nonzero(~production)[0]
    if recursion_rows.size:
        c_arr = _column_slice_array(c, start, n, np.int64)
        rec_memo: dict[tuple[int, int], bool] = {}
        index = view_label.index
        for offset in recursion_rows:
            word = int(packed_arr[offset])
            key = (word, int(c_arr[offset]))
            ok = rec_memo.get(key)
            if ok is None:
                ok = rec_memo[key] = _recursion_retained(
                    index, retained, (word >> 1) & _FIELD_MASK, word >> 17, key[1]
                )
            edge_ok[offset] = ok
    # The fold itself is inherently sequential (child depends on parent),
    # but over plain Python bools/ints it is a tight O(new rows) pass.
    parent_ids = _column_slice_array(parent, start, n, np.int64).tolist()
    for parent_id, ok in zip(parent_ids, edge_ok.tolist()):
        vis.append(ok and vis[parent_id])
    return np.asarray(vis, dtype=bool)


def _path_flag(
    path_id: int, flags: np.ndarray, table, view_label, late_memo: dict, rec_memo: dict
) -> bool:
    if path_id < 0:  # NO_PATH: a boundary label's absent side hides nothing
        return True
    if path_id < len(flags):
        return bool(flags[path_id])
    # The path was interned after the flags snapshot (concurrent ingest);
    # resolve it scalar-ly, walking up to the snapshotted prefix.
    ok = late_memo.get(path_id)
    if ok is None:
        ok = late_memo[path_id] = _path_flag(
            table.parent(path_id), flags, table, view_label, late_memo, rec_memo
        ) and _edge_retained(table, path_id, view_label, rec_memo)
    return ok


def visible_batch(store, view_label, uids, *, flags: "np.ndarray | None" = None) -> list[bool]:
    """Visibility of the given items, answered from packed columns alone.

    Reads each item's packed ``(producer_path_id, consumer_path_id)`` row
    and consults the per-path flags of :func:`path_visibility` — no
    :class:`~repro.core.labels.DataLabel` objects, no edge tuples.  Safe
    against a store another thread is still appending to: nothing is
    compacted or mutated, and rows referencing paths interned after the
    flags snapshot fall back to a scalar walk.  ``flags`` short-circuits
    the per-call trie fold with a (possibly stale-but-prefix) result of
    :func:`path_visibility` for the same table and view.
    """
    if flags is None:
        flags = path_visibility(store.table, view_label)
    table = store.table
    late_memo: dict[int, bool] = {}
    rec_memo: dict[tuple[int, int, int], bool] = {}
    results = []
    for uid in uids:
        producer_path, _, consumer_path, _ = store.row(uid)
        results.append(
            _path_flag(producer_path, flags, table, view_label, late_memo, rec_memo)
            and _path_flag(consumer_path, flags, table, view_label, late_memo, rec_memo)
        )
    return results


def visible_mask(store, view_label, *, flags: "np.ndarray | None" = None) -> np.ndarray:
    """Visibility of *every* row of a sealed columnar store, vectorised.

    One gather per label-path column over the :func:`path_visibility` flags;
    ``mask[row]`` is True iff the item at that row is visible.  Requires a
    sealed (compacted or mapped) store — :meth:`columns` would otherwise
    compact a store a concurrent ingester may still be appending to; use
    :func:`visible_batch` for live runs.  ``flags`` skips the per-call trie
    fold with a memoized :func:`path_visibility` result for the same table
    and view (:meth:`repro.engine.QueryEngine.visible_mask` threads its
    per-arena memo through here).
    """
    if flags is None:
        flags = path_visibility(store.table, view_label)
    columns = store.columns()
    producer = columns["producer_path_id"]
    consumer = columns["consumer_path_id"]
    return np.where(producer < 0, True, flags[np.maximum(producer, 0)]) & np.where(
        consumer < 0, True, flags[np.maximum(consumer, 0)]
    )
