"""Data-visibility checks (Section 5, last paragraph).

Using only a data label and a view label, one can decide in constant time
whether the data item is visible in the projected run ``R_U``: the item is
visible iff every edge label occurring in its port-label paths refers to a
production (or to recursion-cycle productions) retained by the view — that
is, iff the view label's ``I`` function is defined for all of them.
"""

from __future__ import annotations

from repro.core.labels import DataLabel, ProductionEdgeLabel, RecursionEdgeLabel
from repro.errors import DecodingError

__all__ = ["is_visible"]


def is_visible(data_label: DataLabel, view_label) -> bool:
    """Whether the labelled data item is visible in the view.

    ``view_label`` may be a :class:`~repro.core.view_label.ViewLabel` or a
    :class:`~repro.core.matrix_free.MatrixFreeViewLabel`; only its
    retained-production information is consulted.
    """
    index = view_label.index
    retained = view_label.retained_productions
    for path in data_label.paths():
        for edge in path:
            if isinstance(edge, ProductionEdgeLabel):
                if edge.k not in retained:
                    return False
            elif isinstance(edge, RecursionEdgeLabel):
                length = index.cycle_length(edge.s)
                needed = min(max(edge.i - 1, 0), length)
                for offset in range(needed):
                    cycle_edge = index.cycle_edge(edge.s, edge.t + offset)
                    if cycle_edge.production not in retained:
                        return False
            else:  # pragma: no cover - defensive
                raise DecodingError(f"unknown edge label {edge!r}")
    return True
