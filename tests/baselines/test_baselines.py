"""Tests for the DRL and naive baselines."""

import random

import pytest

from repro.analysis import RunReachabilityOracle
from repro.baselines import DRL_ORDER_HEADER_BITS, DRLScheme, NaiveScheme
from repro.core import FVLScheme
from repro.errors import VisibilityError
from repro.io import LabelCodec
from repro.workloads import build_bioaid_specification, random_run, random_view


@pytest.fixture(scope="module")
def setup():
    spec = build_bioaid_specification()
    scheme = FVLScheme(spec)
    drl = DRLScheme(spec)
    derivation = random_run(spec, 400, seed=9)
    return spec, scheme, drl, derivation


def test_drl_labels_only_visible_items(setup):
    spec, scheme, drl, derivation = setup
    view = random_view(spec, 4, seed=4, mode="black", name="v4")
    labeler = drl.label_run(derivation, view)
    oracle = RunReachabilityOracle(derivation.run, view, spec)
    visible = {d for d in derivation.run.data_items if oracle.is_visible(d)}
    assert set(labeler.labels) == visible
    hidden = sorted(set(derivation.run.data_items) - visible)
    if hidden:
        with pytest.raises(VisibilityError):
            labeler.label(hidden[0])


def test_drl_answers_match_oracle(setup):
    spec, scheme, drl, derivation = setup
    view = random_view(spec, 8, seed=5, mode="black", name="v8")
    labeler = drl.label_run(derivation, view)
    oracle = RunReachabilityOracle(derivation.run, view, spec)
    visible = sorted(oracle.projection.visible_items)
    rng = random.Random(1)
    for _ in range(400):
        d1, d2 = rng.choice(visible), rng.choice(visible)
        assert drl.depends(labeler.label(d1), labeler.label(d2), view) == oracle.depends(d1, d2)


def test_drl_labels_are_per_view(setup):
    spec, scheme, drl, derivation = setup
    view_a = random_view(spec, 4, seed=6, mode="black", name="va")
    view_b = random_view(spec, 8, seed=7, mode="black", name="vb")
    labeler_a = drl.label_run(derivation, view_a)
    with pytest.raises(VisibilityError):
        drl.depends(
            labeler_a.label(next(iter(labeler_a.labels))),
            labeler_a.label(next(iter(labeler_a.labels))),
            view_b,
        )


def test_drl_label_overhead_constant(setup):
    spec, scheme, drl, derivation = setup
    codec = LabelCodec(scheme.index)
    fvl_labeler = scheme.label_run(derivation)
    view = random_view(
        spec, len(spec.grammar.composite_modules), seed=8, mode="black", name="all"
    )
    drl_labeler = drl.label_run(derivation, view)
    assert DRL_ORDER_HEADER_BITS > 0
    for uid, drl_label in list(drl_labeler.labels.items())[:100]:
        fvl_bits = codec.data_label_bits(fvl_labeler.label(uid))
        drl_bits = codec.data_label_bits(drl_label.core) + DRL_ORDER_HEADER_BITS
        assert drl_bits == fvl_bits + DRL_ORDER_HEADER_BITS


def test_naive_scheme_matches_oracle(setup):
    spec, scheme, drl, derivation = setup
    naive = NaiveScheme(spec)
    view = random_view(spec, 6, seed=10, mode="grey", name="grey6")
    oracle = RunReachabilityOracle(derivation.run, view, spec)
    visible = sorted(oracle.projection.visible_items)
    rng = random.Random(2)
    for _ in range(200):
        d1, d2 = rng.choice(visible), rng.choice(visible)
        assert naive.depends(derivation.run, view, d1, d2) == oracle.depends(d1, d2)
    assert naive.index_size_items(derivation.run, view) == len(visible)
