"""Differential tests: columnar visibility vs the object-label path (Section 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FVLScheme,
    FVLVariant,
    is_visible,
    path_visibility,
    visible_batch,
    visible_mask,
)
from repro.engine import DEFAULT_RUN, MATRIX_FREE, QueryEngine
from repro.model.projection import ViewProjection
from repro.model.views import default_view
from repro.store import checkpoint_run
from repro.workloads import build_bioaid_specification, random_run, random_view
from tests.conftest import derive_running


@pytest.fixture(scope="module")
def bioaid():
    spec = build_bioaid_specification()
    return spec, FVLScheme(spec)


def _object_visibility(scheme, labeler, view_label, uids):
    return [is_visible(labeler.label(uid), view_label) for uid in uids]


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_columnar_visibility_matches_object_path_bioaid(bioaid, seed):
    spec, scheme = bioaid
    derivation = random_run(spec, 250, seed=seed)
    labeler = scheme.label_run(derivation)
    view = random_view(spec, 5, seed=seed, mode="grey", name=f"vis-{seed}")
    view_label = scheme.label_view(view)
    uids = list(range(1, derivation.run.n_data_items + 1))
    expected = _object_visibility(scheme, labeler, view_label, uids)

    # Live (uncompacted) store: scalar flags, no label objects, no mutation.
    store = labeler.store
    assert not store.is_compacted
    assert visible_batch(store, view_label, uids) == expected
    assert not store.is_compacted
    # Sealed store: the vectorised whole-run mask agrees too.
    store.compact()
    assert visible_batch(store, view_label, uids) == expected
    assert visible_mask(store, view_label).tolist() == expected

    # And both agree with the run-projection oracle.
    oracle = ViewProjection(derivation.run, view)
    assert [uid in oracle.visible_items for uid in uids] == expected


def test_visibility_with_recursion_edges(running_scheme, running_spec, view_u2):
    """The running example exercises recursion-edge labels in the trie."""
    derivation = derive_running(running_spec, seed=5)
    labeler = running_scheme.label_run(derivation)
    uids = sorted(labeler.labels)
    for view in (view_u2, default_view(running_spec)):
        view_label = running_scheme.label_view(view)
        expected = _object_visibility(running_scheme, labeler, view_label, uids)
        assert visible_batch(labeler.store, view_label, uids) == expected
        flags = path_visibility(labeler.store.table, view_label)
        assert flags.dtype == np.bool_ and flags[0]  # root path is always visible


def test_engine_visibility_over_live_and_mapped_shards(bioaid, tmp_path):
    spec, scheme = bioaid
    derivation = random_run(spec, 250, seed=7)
    view = random_view(spec, 5, seed=9, mode="grey", name="vis-engine")
    engine = QueryEngine(scheme)
    engine.add_run(DEFAULT_RUN, derivation)
    uids = list(range(1, derivation.run.n_data_items + 1))
    view_label = scheme.label_view(view)
    expected = _object_visibility(scheme, engine.run_labeler(), view_label, uids)

    assert engine.is_visible_batch(uids, view) == expected
    assert engine.is_visible(uids[0], view) == expected[0]
    # Variants only differ in matrix materialisation; visibility is the
    # retained-production test, identical across all of them.
    assert (
        engine.is_visible_batch(uids, view, variant=FVLVariant.SPACE_EFFICIENT)
        == expected
    )
    assert engine.is_visible_batch(uids, view, variant=MATRIX_FREE) == expected

    run_file = tmp_path / "vis.fvl"
    engine.checkpoint(run_file)
    engine.attach(run_file, run_id="disk")
    assert engine.is_visible_batch(uids, view, run="disk") == expected


def test_visibility_of_multi_segment_mapped_runs(bioaid, tmp_path):
    spec, scheme = bioaid
    derivation = random_run(spec, 250, seed=8)
    events = derivation.events
    labeler = scheme.run_labeler()
    run_file = tmp_path / "segments.fvl"
    step = max(1, len(events) // 4)
    for lo in range(0, len(events), step):
        for event in events[lo : lo + step]:
            labeler(event)
        checkpoint_run(run_file, labeler.store, labeler.tree.nodes)
    view = random_view(spec, 5, seed=2, mode="grey", name="vis-mapped")
    view_label = scheme.label_view(view)
    uids = list(range(1, derivation.run.n_data_items + 1))
    expected = _object_visibility(scheme, labeler, view_label, uids)

    engine = QueryEngine(scheme)
    mapped = engine.attach(run_file)
    assert mapped.n_segments >= 3
    assert engine.is_visible_batch(uids, view) == expected
    assert visible_mask(mapped.store, view_label).tolist() == expected


def test_visible_batch_handles_boundary_and_late_paths(bioaid):
    spec, scheme = bioaid
    derivation = random_run(spec, 120, seed=9)
    labeler = scheme.label_run(derivation)
    view_label = scheme.label_view(default_view(spec))
    # Every label path is retained under the default view — including the
    # NO_PATH sides of boundary labels (initial inputs / final outputs).
    uids = list(range(1, derivation.run.n_data_items + 1))
    assert all(visible_batch(labeler.store, view_label, uids))
