"""Tests for view labels (Section 4.3), the decoder (Section 4.4) and visibility (Section 5)."""

import pytest

from repro.core import FVLVariant, depends, inputs_matrix, outputs_matrix
from repro.core.labels import ProductionEdgeLabel, RecursionEdgeLabel
from repro.errors import UnsafeWorkflowError, VisibilityError
from repro.matrices import BoolMatrix
from repro.model import DependencyAssignment, Derivation, WorkflowSpecification, WorkflowView, default_view
from repro.analysis import RunReachabilityOracle
from repro.workloads import build_unsafe_example
from tests.conftest import derive_running


def test_view_label_functions_shapes(running_scheme, running_spec):
    label = running_scheme.label_default_view()
    # I(1, 3): from S's 2 inputs to A's 1 input.
    assert label.inputs(1, 3).shape == (2, 1)
    # O(1, 4): from S's 2 outputs to C's 2 outputs (reversed).
    assert label.outputs(1, 4).shape == (2, 2)
    # Z(1, 3, 4): from A's 1 output to C's 2 inputs.
    assert label.z(1, 3, 4).shape == (1, 2)
    # Z with i >= j is the empty (all-false) matrix.
    assert label.z(1, 4, 3).is_all_false()
    assert label.z(1, 4, 4).is_all_false()


def test_view_label_concrete_values(running_scheme):
    label = running_scheme.label_default_view()
    # In W1, A's output feeds C's second input: Z(1,3,4) = [ (1,2) ].
    assert label.z(1, 3, 4).to_pairs() == frozenset({(1, 2)})
    # I(1, 3): A's single input is fed from a, which is fed from S's input 1.
    assert label.inputs(1, 3).to_pairs() == frozenset({(1, 1)})
    # lambda*(S) is the fine-grained matrix checked in the safety tests.
    assert label.lam_star_start().to_pairs() == frozenset({(2, 1), (1, 2), (2, 2)})


def test_view_label_variants_agree(running_scheme, running_views):
    for view in running_views:
        labels = [
            running_scheme.label_view(view, variant)
            for variant in (
                FVLVariant.DEFAULT,
                FVLVariant.SPACE_EFFICIENT,
                FVLVariant.QUERY_EFFICIENT,
            )
        ]
        for k in labels[0].retained_productions:
            production = running_scheme.index.production(k)
            for i in range(1, len(production.rhs) + 1):
                assert labels[0].inputs(k, i) == labels[1].inputs(k, i) == labels[2].inputs(k, i)
                assert labels[0].outputs(k, i) == labels[1].outputs(k, i) == labels[2].outputs(k, i)


def test_view_label_sizes_ordering(running_scheme, running_views):
    for view in running_views:
        space = running_scheme.label_view(view, FVLVariant.SPACE_EFFICIENT).size_bits()
        default = running_scheme.label_view(view, FVLVariant.DEFAULT).size_bits()
        query = running_scheme.label_view(view, FVLVariant.QUERY_EFFICIENT).size_bits()
        assert space <= default <= query


def test_unsafe_view_is_rejected(running_scheme, running_spec):
    # Give C grey-box dependencies that are inconsistent across A's productions:
    # impossible here (A is 1x1), so instead use the unsafe Figure-6 example.
    grammar, deps = build_unsafe_example()
    spec = WorkflowSpecification(grammar, deps)
    from repro.core import FVLScheme

    scheme = FVLScheme(spec)
    with pytest.raises(UnsafeWorkflowError):
        scheme.label_view(default_view(spec))


def test_retained_productions_of_u2(running_scheme, view_u2):
    label = running_scheme.label_view(view_u2)
    assert label.retained_productions == frozenset({1, 2, 3, 4})
    ab_cycle = running_scheme.index.cycle_position("A")[0]
    d_cycle = running_scheme.index.cycle_position("D")[0]
    assert label.is_retained_cycle(ab_cycle)      # the A<->B cycle survives
    assert not label.is_retained_cycle(d_cycle)   # the D self-loop is hidden
    with pytest.raises(VisibilityError):
        label.inputs(5, 1)


def test_inputs_chain_identity_and_composition(running_scheme):
    label = running_scheme.label_default_view()
    index = running_scheme.index
    s, t = index.cycle_position("A")
    identity = label.inputs_chain(s, t, 0)
    assert identity == BoolMatrix.identity(1)
    two_steps = label.inputs_chain(s, t, 2)
    one = inputs_matrix(RecursionEdgeLabel(s, t, 2), label)
    assert one == label.inputs_chain(s, t, 1)
    assert two_steps == label.inputs_chain(s, t, 1) @ label.inputs_chain(s, t + 1, 1)
    assert outputs_matrix(ProductionEdgeLabel(1, 3), label) == label.outputs(1, 3)


def test_decoder_example8_flip(running_scheme, running_spec, view_u2):
    """The same pair of data labels answers differently under the two views."""
    derivation = Derivation(running_spec)
    labeler = running_scheme.label_run(derivation)
    derivation.expand("S:1", 1)
    derivation.expand("C:1", 5)
    run = derivation.run
    d_in2 = run.item_at("C:1", "in", 2)
    d_out1 = run.item_at("C:1", "out", 1)
    default_label = running_scheme.label_default_view()
    u2_label = running_scheme.label_view(view_u2)
    l1, l2 = labeler.label(d_in2), labeler.label(d_out1)
    assert running_scheme.depends(l1, l2, default_label) is False
    assert running_scheme.depends(l1, l2, u2_label) is True


def test_decoder_boundary_cases(running_scheme, running_spec):
    derivation = derive_running(running_spec, seed=4)
    labeler = running_scheme.label_run(derivation)
    view_label = running_scheme.label_default_view()
    initial = derivation.initial_event.input_items[0]
    final = derivation.initial_event.output_items[1]
    # Case I: nothing depends on a final output, initial inputs depend on nothing.
    assert not running_scheme.depends(labeler.label(final), labeler.label(initial), view_label)
    # Case II: initial -> final is lambda*(S).
    expected = running_scheme.label_default_view().lam_star_start().get(1, 2)
    assert running_scheme.depends(labeler.label(initial), labeler.label(final), view_label) == expected


def test_decoder_matches_oracle_on_directed_derivation(running_scheme, running_spec, running_views):
    derivation = derive_running(running_spec, seed=11)
    labeler = running_scheme.label_run(derivation)
    run = derivation.run
    for view in running_views:
        view_label = running_scheme.label_view(view, FVLVariant.QUERY_EFFICIENT)
        oracle = RunReachabilityOracle(run, view, running_spec)
        visible = sorted(oracle.projection.visible_items)
        for d1 in visible[:40]:
            for d2 in visible[:40]:
                expected = oracle.depends(d1, d2)
                got = running_scheme.depends(labeler.label(d1), labeler.label(d2), view_label)
                assert got == expected, (view.name, d1, d2)


def test_visibility_check_matches_projection(running_scheme, running_spec, view_u2):
    derivation = derive_running(running_spec, seed=6)
    labeler = running_scheme.label_run(derivation)
    run = derivation.run
    oracle = RunReachabilityOracle(run, view_u2, running_spec)
    u2_label = running_scheme.label_view(view_u2)
    for d in run.data_items:
        assert running_scheme.is_visible(labeler.label(d), u2_label) == oracle.is_visible(d)


def test_decoder_partial_run(running_scheme, running_spec):
    """Queries work on partial executions (the dynamic setting of Definition 10)."""
    derivation = Derivation(running_spec)
    labeler = running_scheme.label_run(derivation)
    derivation.expand("S:1", 1)
    derivation.expand("A:1", 2)
    view = default_view(running_spec)
    view_label = running_scheme.label_default_view()
    oracle = RunReachabilityOracle(derivation.run, view, running_spec)
    items = sorted(derivation.run.data_items)
    for d1 in items:
        for d2 in items:
            assert running_scheme.depends(
                labeler.label(d1), labeler.label(d2), view_label
            ) == oracle.depends(d1, d2)
