"""Property-based differential tests: FVL (all variants) vs the ground-truth oracle.

These are the strongest correctness tests in the suite: random derivations of
the running example and of a small synthetic specification are labelled
online, random safe views are labelled statically, and the decoding predicate
is compared against port-level reachability for randomly chosen data-item
pairs.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import RunReachabilityOracle
from repro.baselines import DRLScheme
from repro.core import FVLScheme, FVLVariant
from repro.engine import QueryEngine
from repro.model.projection import ViewProjection
from repro.workloads import (
    build_running_example,
    build_synthetic_specification,
    random_run,
    random_view,
    running_example_views,
)

SPEC = build_running_example()
SCHEME = FVLScheme(SPEC)
VIEWS = running_example_views(SPEC)
VIEW_LABELS = {
    (view.name, variant): SCHEME.label_view(view, variant)
    for view in VIEWS
    for variant in (FVLVariant.DEFAULT, FVLVariant.QUERY_EFFICIENT)
}

SYN_SPEC = build_synthetic_specification(
    workflow_size=6, module_degree=2, nesting_depth=2, recursion_length=2, seed=3
)
SYN_SCHEME = FVLScheme(SYN_SPEC)


def _random_complete_derivation(spec, seed):
    return random_run(spec, target_items=60 + (seed % 5) * 40, seed=seed)


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000), data=st.data())
def test_running_example_decoder_matches_oracle(seed, data):
    derivation = _random_complete_derivation(SPEC, seed)
    labeler = SCHEME.label_run(derivation)
    run = derivation.run
    view = data.draw(st.sampled_from(VIEWS))
    variant = data.draw(
        st.sampled_from([FVLVariant.DEFAULT, FVLVariant.QUERY_EFFICIENT])
    )
    view_label = VIEW_LABELS[(view.name, variant)]
    oracle = RunReachabilityOracle(run, view, SPEC)
    visible = sorted(oracle.projection.visible_items)
    rng = random.Random(seed)
    for _ in range(60):
        d1, d2 = rng.choice(visible), rng.choice(visible)
        assert SCHEME.depends(
            labeler.label(d1), labeler.label(d2), view_label
        ) == oracle.depends(d1, d2)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=1_000),
    n_expand=st.integers(min_value=1, max_value=4),
    mode=st.sampled_from(["grey", "white", "black"]),
)
def test_synthetic_decoder_matches_oracle(seed, n_expand, mode):
    derivation = random_run(SYN_SPEC, target_items=150, seed=seed)
    labeler = SYN_SCHEME.label_run(derivation)
    view = random_view(SYN_SPEC, n_expand, seed=seed, mode=mode)
    view_label = SYN_SCHEME.label_view(view, FVLVariant.QUERY_EFFICIENT)
    oracle = RunReachabilityOracle(derivation.run, view, SYN_SPEC)
    visible = sorted(oracle.projection.visible_items)
    rng = random.Random(seed)
    for _ in range(50):
        d1, d2 = rng.choice(visible), rng.choice(visible)
        assert SYN_SCHEME.depends(
            labeler.label(d1), labeler.label(d2), view_label
        ) == oracle.depends(d1, d2)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_labels_are_prefix_structured(seed):
    """Producer and consumer port labels of one item share their path prefix."""
    derivation = _random_complete_derivation(SPEC, seed)
    labeler = SCHEME.label_run(derivation)
    for uid in derivation.run.data_items:
        label = labeler.label(uid)
        if not label.is_intermediate:
            continue
        prefix = label.shared_prefix_length()
        # The two ports are created by the same production application, so
        # the paths differ in at most the last two edge labels.
        assert len(label.producer.path) - prefix <= 2
        assert len(label.consumer.path) - prefix <= 2


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_data_label_length_is_logarithmic(seed):
    """Data labels stay within a generous O(log n) envelope (Theorem 10)."""
    from repro.io import LabelCodec
    import math

    codec = LabelCodec(SCHEME.index)
    derivation = _random_complete_derivation(SPEC, seed)
    labeler = SCHEME.label_run(derivation)
    n = derivation.run.n_data_items
    bound = 40 * (math.log2(n) + 1)
    for uid in derivation.run.data_items:
        assert codec.data_label_bits(labeler.label(uid)) <= bound


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000), data=st.data())
def test_engine_batch_matches_single_pair_predicate(seed, data):
    """QueryEngine.depends_batch agrees pair-for-pair with FVLScheme.depends.

    The batched path takes shortcuts the one-pair predicate does not —
    interned decode state, memoized production matrices, path-grouped matrix
    assembly — so every variant is differentially checked against the
    single-pair oracle on random runs, views and query batches.
    """
    derivation = _random_complete_derivation(SPEC, seed)
    labeler = SCHEME.label_run(derivation)
    engine = QueryEngine(SCHEME, cache_size=4)
    engine.add_run("run", derivation)
    view = data.draw(st.sampled_from(VIEWS))
    variant = data.draw(st.sampled_from(list(FVLVariant)))
    view_label = SCHEME.label_view(view, variant)
    visible = sorted(ViewProjection(derivation.run, view).visible_items)
    rng = random.Random(seed)
    pairs = [(rng.choice(visible), rng.choice(visible)) for _ in range(50)]
    batch = engine.depends_batch(pairs, view, run="run", variant=variant)
    for (d1, d2), answer in zip(pairs, batch):
        assert answer == SCHEME.depends(
            labeler.label(d1), labeler.label(d2), view_label
        )


SYN_DRL = DRLScheme(SYN_SPEC)


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=1_000),
    n_expand=st.integers(min_value=1, max_value=3),
    data=st.data(),
)
def test_engine_batch_matches_drl_on_coarse_views(seed, n_expand, data):
    """On DRL's native setting (black-box views) the engine matches DRL too."""
    derivation = random_run(SYN_SPEC, target_items=120, seed=seed)
    view = random_view(SYN_SPEC, n_expand, seed=seed, mode="black")
    variant = data.draw(st.sampled_from(list(FVLVariant)))
    engine = QueryEngine(SYN_SCHEME, cache_size=4)
    engine.add_run("run", derivation)
    drl_labeler = SYN_DRL.label_run(derivation, view)
    visible = sorted(ViewProjection(derivation.run, view).visible_items)
    rng = random.Random(seed)
    pairs = [(rng.choice(visible), rng.choice(visible)) for _ in range(40)]
    batch = engine.depends_batch(pairs, view, run="run", variant=variant)
    for (d1, d2), answer in zip(pairs, batch):
        assert answer == SYN_DRL.depends(
            drl_labeler.label(d1), drl_labeler.label(d2), view
        )


@pytest.mark.parametrize("variant", list(FVLVariant))
def test_variants_agree_with_each_other(variant):
    derivation = _random_complete_derivation(SPEC, 123)
    labeler = SCHEME.label_run(derivation)
    view = VIEWS[1]
    reference = SCHEME.label_view(view, FVLVariant.DEFAULT)
    other = SCHEME.label_view(view, variant)
    oracle = RunReachabilityOracle(derivation.run, view, SPEC)
    visible = sorted(oracle.projection.visible_items)
    rng = random.Random(0)
    for _ in range(200):
        d1, d2 = rng.choice(visible), rng.choice(visible)
        l1, l2 = labeler.label(d1), labeler.label(d2)
        assert SCHEME.depends(l1, l2, other) == SCHEME.depends(l1, l2, reference)
