"""Tests for Matrix-Free FVL and the FVLScheme facade."""

import random

import pytest

from repro.analysis import RunReachabilityOracle
from repro.core import FVLScheme, FVLVariant, MatrixFreeViewLabel
from repro.errors import DecodingError, NotStrictlyLinearError
from repro.workloads import (
    build_bioaid_specification,
    build_nonstrict_example,
    random_run,
    random_view,
)


@pytest.fixture(scope="module")
def bioaid_setup():
    spec = build_bioaid_specification()
    scheme = FVLScheme(spec)
    derivation = random_run(spec, 500, seed=5)
    labeler = scheme.label_run(derivation)
    return spec, scheme, derivation, labeler


def test_matrix_free_label_construction(bioaid_setup):
    spec, scheme, derivation, labeler = bioaid_setup
    view = random_view(spec, 8, seed=1, mode="black", name="bb")
    mf = scheme.label_view_matrix_free(view)
    assert isinstance(mf, MatrixFreeViewLabel)
    assert mf.retained_productions
    assert mf.size_bits() < scheme.label_view(view).size_bits()


def test_matrix_free_agrees_with_exact_decoding(bioaid_setup):
    spec, scheme, derivation, labeler = bioaid_setup
    view = random_view(spec, 8, seed=2, mode="black", name="bb2")
    mf = scheme.label_view_matrix_free(view)
    exact = scheme.label_view(view, FVLVariant.QUERY_EFFICIENT)
    oracle = RunReachabilityOracle(derivation.run, view, spec)
    visible = sorted(oracle.projection.visible_items)
    rng = random.Random(0)
    for _ in range(400):
        d1, d2 = rng.choice(visible), rng.choice(visible)
        l1, l2 = labeler.label(d1), labeler.label(d2)
        assert scheme.depends(l1, l2, mf) == scheme.depends(l1, l2, exact)
        assert scheme.depends(l1, l2, mf) == oracle.depends(d1, d2)


def test_matrix_free_visibility(bioaid_setup):
    spec, scheme, derivation, labeler = bioaid_setup
    view = random_view(spec, 2, seed=3, mode="black", name="tiny")
    mf = scheme.label_view_matrix_free(view)
    oracle = RunReachabilityOracle(derivation.run, view, spec)
    for d in list(derivation.run.data_items)[:200]:
        assert scheme.is_visible(labeler.label(d), mf) == oracle.is_visible(d)


def test_scheme_requires_strictly_linear_grammar():
    with pytest.raises(NotStrictlyLinearError):
        FVLScheme(build_nonstrict_example())


def test_scheme_from_bare_grammar(running_spec):
    scheme = FVLScheme(running_spec.grammar)
    assert scheme.specification is None
    with pytest.raises(DecodingError):
        scheme.label_default_view()


def test_basic_scheme_conversion(running_spec, running_scheme):
    """Theorem 8's conversion: pair data labels with the default-view label."""
    from repro.model import Derivation

    derivation = Derivation(running_spec)
    labeler = running_scheme.label_run(derivation)
    derivation.expand("S:1", 1)
    view_label = running_scheme.label_default_view()
    items = sorted(derivation.run.data_items)
    l1, l2 = labeler.label(items[0]), labeler.label(items[-1])
    assert running_scheme.basic_scheme_depends(l1, l2, view_label) == running_scheme.depends(
        l1, l2, view_label
    )
