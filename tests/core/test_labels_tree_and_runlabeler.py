"""Tests for data labels, the compressed parse tree and the dynamic run labeler."""

import pytest

from repro.core import (
    BasicParseTree,
    DataLabel,
    PortLabel,
    ProductionEdgeLabel,
    RecursionEdgeLabel,
    common_prefix_length,
)
from repro.errors import LabelingError
from repro.model import Derivation
from tests.conftest import derive_running


def test_edge_label_value_semantics():
    assert ProductionEdgeLabel(1, 2) == ProductionEdgeLabel(1, 2)
    assert ProductionEdgeLabel(1, 2) != RecursionEdgeLabel(1, 2, 1)
    assert RecursionEdgeLabel(1, 1, 3).as_tuple() == (1, 1, 3)


def test_common_prefix_length():
    a = (ProductionEdgeLabel(1, 1), ProductionEdgeLabel(2, 2))
    b = (ProductionEdgeLabel(1, 1), ProductionEdgeLabel(2, 3))
    assert common_prefix_length(a, b) == 1
    assert common_prefix_length(a, a) == 2
    assert common_prefix_length((), a) == 0


def test_data_label_classification():
    port = PortLabel((), 1)
    assert DataLabel(None, port).is_initial_input
    assert DataLabel(port, None).is_final_output
    assert DataLabel(port, port).is_intermediate
    assert DataLabel(port, port).shared_prefix_length() == 0


def _label_run(scheme, spec, productions):
    derivation = Derivation(spec)
    labeler = scheme.label_run(derivation)
    for uid, k in productions:
        derivation.expand(uid, k)
    return derivation, labeler


def test_initial_labels_have_empty_paths(running_scheme, running_spec):
    derivation, labeler = _label_run(running_scheme, running_spec, [])
    label = labeler.label(derivation.initial_event.input_items[0])
    assert label.is_initial_input
    assert label.consumer.path == ()
    assert label.consumer.port == 1


def test_expansion_labels_use_production_edges(running_scheme, running_spec):
    derivation, labeler = _label_run(running_scheme, running_spec, [("S:1", 1)])
    # The item produced by a:1 (position 1) and consumed by A:1 (position 3).
    item = derivation.run.item_at("a:1", "out", 1)
    label = labeler.label(item)
    assert label.producer.path == (ProductionEdgeLabel(1, 1),)
    # A is recursive, so its node hangs below a fresh recursive node: the
    # consumer path is the production edge (1, 3) followed by a (s, t, 1) edge.
    assert label.consumer.path[0] == ProductionEdgeLabel(1, 3)
    assert isinstance(label.consumer.path[1], RecursionEdgeLabel)
    assert label.consumer.path[1].i == 1
    assert label.producer.port == 1


def test_recursion_chain_becomes_siblings(running_scheme, running_spec):
    # Unroll the A<->B recursion twice: A:1 -p2-> B:1 -p4-> A:2 -p2-> ...
    derivation, labeler = _label_run(
        running_scheme,
        running_spec,
        [("S:1", 1), ("A:1", 2), ("B:1", 4), ("A:2", 2)],
    )
    tree = labeler.tree
    node_a1 = tree.node_for("A:1")
    node_b1 = tree.node_for("B:1")
    node_a2 = tree.node_for("A:2")
    assert node_a1.parent is node_b1.parent is node_a2.parent
    assert node_a1.parent.is_recursive
    assert isinstance(node_a1.edge_from_parent, RecursionEdgeLabel)
    assert node_a1.edge_from_parent.i == 1
    assert node_b1.edge_from_parent.i == 2
    assert node_a2.edge_from_parent.i == 3
    # The self-recursion over D creates a separate recursive node.
    derivation.expand("C:1", 5)
    derivation.expand("D:1", 6)
    node_d1 = tree.node_for("D:1")
    node_d2 = tree.node_for("D:2")
    assert node_d1.parent.is_recursive
    assert node_d1.parent is node_d2.parent
    assert node_d1.parent is not node_a1.parent


def test_compressed_tree_depth_is_bounded(running_scheme, running_spec):
    """Lemma 4: the compressed-tree depth never exceeds 2 * |Delta|."""
    bound = 2 * len(running_spec.grammar.composite_modules)
    for seed in range(4):
        derivation = derive_running(running_spec, seed=seed)
        labeler = running_scheme.label_run(derivation)
        assert labeler.tree.depth() <= bound


def test_basic_tree_depth_grows_with_recursion(running_scheme, running_spec):
    derivation, labeler = _label_run(
        running_scheme,
        running_spec,
        [("S:1", 1), ("A:1", 2), ("B:1", 4), ("A:2", 2), ("B:2", 4), ("A:3", 2)],
    )
    basic = BasicParseTree(derivation.run)
    assert basic.depth() >= 6
    assert labeler.tree.depth() <= 2 * len(running_spec.grammar.composite_modules)
    assert basic.path("A:3")[0] == (1, 3)


def test_labels_are_immutable_and_unique(running_scheme, running_spec):
    derivation = Derivation(running_spec)
    labeler = running_scheme.label_run(derivation)
    derivation.expand("S:1", 1)
    with pytest.raises(LabelingError):
        labeler._assign(1, DataLabel(None, PortLabel((), 1)))


def test_labeler_requires_initial_event_first(running_scheme, running_spec):
    derivation = Derivation(running_spec)
    derivation.expand("S:1", 1)
    labeler = running_scheme.run_labeler()
    with pytest.raises(LabelingError):
        labeler(derivation.events[1])  # expansion before the initial event


def test_every_item_gets_exactly_one_label(running_scheme, running_spec):
    derivation = derive_running(running_spec, seed=7)
    labeler = running_scheme.label_run(derivation)
    assert len(labeler) == derivation.run.n_data_items
    assert all(uid in labeler for uid in derivation.run.data_items)


def test_label_unknown_item_raises(running_scheme, running_spec):
    derivation = Derivation(running_spec)
    labeler = running_scheme.label_run(derivation)
    with pytest.raises(LabelingError):
        labeler.label(999)
