"""Property tests: the columnar parse tree is behaviourally identical to the
object tree, and the persistent run store round-trips losslessly.

For random runs of the BioAID-like specification, a
:class:`~repro.store.NodeTable`-backed :class:`CompressedParseTree` must be
observationally identical to the seed's :class:`ObjectParseTree`: the same
node kinds, paths, edge labels, depths and fanouts for every module instance,
and the same materialised data labels.  On top of that, an mmap reload of a
checkpointed run — including an incremental checkpoint append mid-derivation —
must reproduce the in-memory columns and labels exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FVLScheme
from repro.core.run_labeler import RunLabeler
from repro.store import MappedRunStore, checkpoint_run
from repro.workloads import build_bioaid_specification, random_run


@pytest.fixture(scope="module")
def spec():
    return build_bioaid_specification()


@pytest.fixture(scope="module")
def scheme(spec):
    return FVLScheme(spec)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6), size=st.sampled_from([40, 150, 400]))
def test_columnar_tree_matches_object_tree(spec, scheme, seed, size):
    derivation = random_run(spec, size, seed=seed)
    columnar = scheme.label_run(derivation)
    objects = scheme.label_run(derivation, columnar=False)
    col_tree, obj_tree = columnar.tree, objects.tree

    assert col_tree.n_nodes == obj_tree.n_nodes
    assert col_tree.depth() == obj_tree.depth()
    assert col_tree.max_fanout() == obj_tree.max_fanout()

    for uid in derivation.run.instances:
        assert col_tree.has_node(uid) == obj_tree.has_node(uid)
        if not col_tree.has_node(uid):
            continue
        flyweight = col_tree.node_for(uid)
        eager = obj_tree.node_for(uid)
        assert flyweight.kind == eager.kind == "module"
        assert flyweight.module_name == eager.module_name
        assert flyweight.instance_uid == eager.instance_uid == uid
        assert flyweight.path == eager.path
        assert flyweight.edge_from_parent == eager.edge_from_parent
        assert flyweight.depth == eager.depth
        fly_parent, eager_parent = flyweight.parent, eager.parent
        assert (fly_parent is None) == (eager_parent is None)
        if fly_parent is not None:
            assert fly_parent.kind == eager_parent.kind
            assert fly_parent.cycle == eager_parent.cycle
            assert fly_parent.path == eager_parent.path
            assert len(fly_parent.children) == len(eager_parent.children)

    # Both representations feed the same labels downstream.
    for uid in derivation.run.data_items:
        assert columnar.label(uid) == objects.label(uid)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_checkpoint_reload_and_incremental_append_lossless(spec, scheme, seed, tmp_path_factory):
    derivation = random_run(spec, 250, seed=seed)
    events = derivation.events
    half = max(1, len(events) // 2)

    labeler = RunLabeler(scheme.index)
    for event in events[:half]:
        labeler(event)
    run_file = tmp_path_factory.mktemp("runs") / f"run-{seed}.fvl"
    first = checkpoint_run(run_file, labeler.store, labeler.tree.nodes)
    for event in events[half:]:
        labeler(event)
    second = checkpoint_run(run_file, labeler.store, labeler.tree.nodes)

    assert first.created and not second.created
    assert second.delta_items == len(labeler.store) - first.delta_items

    with MappedRunStore(run_file) as mapped:
        assert mapped.n_segments == 2
        assert mapped.n_items == len(labeler.store)
        assert mapped.n_paths == len(labeler.store.table)
        assert mapped.n_nodes == len(labeler.tree.nodes)
        for uid in derivation.run.data_items:
            assert tuple(mapped.row(uid)) == tuple(labeler.store.row(uid))
            assert mapped.label(uid) == labeler.label(uid)
        nodes = labeler.tree.nodes
        for row in range(len(nodes)):
            assert int(mapped.nodes.parent_row(row)) == nodes.parent_row(row)
            assert int(mapped.nodes.path_id(row)) == nodes.path_id(row)
            assert mapped.nodes.kind(row) == nodes.kind(row)
            assert mapped.nodes.uid(row) == nodes.uid(row)
            assert mapped.nodes.module_name(row) == nodes.module_name(row)
            assert mapped.nodes.child_count(row) == nodes.child_count(row)
        assert mapped.nodes.max_fanout() == labeler.tree.max_fanout()
