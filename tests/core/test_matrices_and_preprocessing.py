"""Tests for boolean matrices, fast powering (Lemma 5) and grammar preprocessing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GrammarIndex
from repro.errors import NotStrictlyLinearError
from repro.matrices import BoolMatrix, MatrixPowerTable, chain_product


def test_boolmatrix_constructors_and_accessors():
    m = BoolMatrix.from_pairs({(1, 2), (2, 1)}, 2, 2)
    assert m.get(1, 2) and m.get(2, 1)
    assert not m.get(1, 1)
    assert m.shape == (2, 2)
    assert m.count() == 2
    assert m.to_pairs() == frozenset({(1, 2), (2, 1)})
    assert BoolMatrix.ones(2, 3).is_all_true()
    assert BoolMatrix.zeros(2, 3).is_all_false()
    assert BoolMatrix.identity(3).get(2, 2)


def test_boolmatrix_rejects_bad_pairs():
    with pytest.raises(ValueError):
        BoolMatrix.from_pairs({(3, 1)}, 2, 2)


def test_boolmatrix_product_is_boolean_composition():
    a = BoolMatrix.from_pairs({(1, 2)}, 2, 2)
    b = BoolMatrix.from_pairs({(2, 1)}, 2, 2)
    assert (a @ b).to_pairs() == frozenset({(1, 1)})
    assert (b @ a).to_pairs() == frozenset({(2, 2)})


def test_boolmatrix_shape_mismatch():
    with pytest.raises(ValueError):
        BoolMatrix.ones(2, 3) @ BoolMatrix.ones(2, 3)


def test_boolmatrix_transpose_union_power():
    a = BoolMatrix.from_pairs({(1, 2)}, 2, 2)
    assert a.T.to_pairs() == frozenset({(2, 1)})
    assert a.union(a.T).count() == 2
    assert a.power(0) == BoolMatrix.identity(2)
    assert a.power(3) == a @ a @ a


def test_chain_product_empty_needs_identity_size():
    assert chain_product([], identity_size=2) == BoolMatrix.identity(2)
    with pytest.raises(ValueError):
        chain_product([])


@settings(max_examples=50, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=4),
    pairs=st.lists(
        st.tuples(st.integers(1, 4), st.integers(1, 4)), max_size=8
    ),
    exponent=st.integers(min_value=1, max_value=60),
)
def test_power_table_matches_direct_powering(size, pairs, exponent):
    """Property: the Lemma-5 table agrees with repeated multiplication."""
    pairs = {(min(i, size), min(o, size)) for i, o in pairs}
    matrix = BoolMatrix.from_pairs(pairs, size, size)
    table = MatrixPowerTable(matrix)
    assert table.power(exponent) == matrix.power(exponent)


def test_power_table_detects_repetition():
    matrix = BoolMatrix.identity(3)
    table = MatrixPowerTable(matrix)
    assert table.cycle_length == 1
    assert table.power(100) == matrix


def test_grammar_index_cycles_and_positions(running_scheme):
    index = running_scheme.index
    assert index.n_cycles == 2
    assert index.cycle_position("A")[0] == index.cycle_position("B")[0]
    assert index.same_cycle("A", "B")
    assert not index.same_cycle("A", "D")
    assert index.is_recursive_module("D")
    assert not index.is_recursive_module("C")
    # The cycle over D is the self-loop through edge (6, 2).
    s, t = index.cycle_position("D")
    assert index.cycle_edge(s, t).key == (6, 2)
    assert index.cycle_length(s) == 1
    assert index.normalize_rotation(s, 5) == 1


def test_grammar_index_chain_member_module(running_scheme):
    index = running_scheme.index
    s, t = index.cycle_position("A")
    assert index.chain_member_module(s, t, 1).name == "A"
    assert index.chain_member_module(s, t, 2).name == "B"
    assert index.chain_member_module(s, t, 3).name == "A"


def test_grammar_index_rejects_nonstrict(nonstrict_spec):
    with pytest.raises(NotStrictlyLinearError):
        GrammarIndex(nonstrict_spec.grammar)


def test_grammar_index_constants(running_scheme):
    index = running_scheme.index
    assert index.n_productions() == 8
    assert index.max_ports() == 2
    assert index.max_rhs_size() == 6
    assert index.edge_target_module(5, 3).name == "E"
    assert index.edge_source_module(5).name == "C"
