"""Tests for the production graph, edge ids, cycles and recursion classes (Section 3.2)."""

import pytest

from repro.analysis import (
    ProductionGraph,
    is_linear_recursive,
    is_recursive,
    is_strictly_linear_recursive,
    recursion_summary,
    recursive_modules,
)
from repro.errors import NotStrictlyLinearError


def test_edge_ids_of_running_example(running_spec):
    graph = ProductionGraph(running_spec.grammar)
    # Production 1 rewrites S with the six modules of W1.
    assert graph.edge(1, 1).source == "S"
    assert graph.edge(1, 1).target == "a"
    assert graph.edge(1, 3).target == "A"
    # Production 2 (A -> W2) has B at topological position 2 (Example 12).
    assert graph.edge(2, 2).target == "B"
    # Production 4 (B -> W4) has A at position 2.
    assert graph.edge(4, 2).target == "A"
    assert not graph.has_edge(1, 7)


def test_reachability_in_production_graph(running_spec):
    graph = ProductionGraph(running_spec.grammar)
    assert graph.reaches("S", "f")
    assert graph.reaches("A", "B")
    assert graph.reaches("B", "A")
    assert graph.reaches("C", "C")  # self-reachability by convention
    assert not graph.reaches("C", "A")


def test_recursive_modules_of_running_example(running_spec):
    assert recursive_modules(running_spec.grammar) == frozenset({"A", "B", "D"})


def test_cycles_match_example_12(running_spec):
    graph = ProductionGraph(running_spec.grammar)
    cycles = graph.cycles()
    keys = [[edge.key for edge in cycle] for cycle in cycles]
    assert [(2, 2), (4, 2)] in keys
    assert [(6, 2)] in keys
    assert len(cycles) == 2


def test_running_example_is_strictly_linear(running_spec):
    assert is_recursive(running_spec.grammar)
    assert is_linear_recursive(running_spec.grammar)
    assert is_strictly_linear_recursive(running_spec.grammar)


def test_nonstrict_example_classification(nonstrict_spec):
    grammar = nonstrict_spec.grammar
    assert is_recursive(grammar)
    assert is_linear_recursive(grammar)
    assert not is_strictly_linear_recursive(grammar)
    with pytest.raises(NotStrictlyLinearError):
        ProductionGraph(grammar).cycles()


def test_unsafe_example_is_not_recursive(unsafe_example):
    grammar, _ = unsafe_example
    assert not is_recursive(grammar)
    assert is_strictly_linear_recursive(grammar)  # trivially (no cycles)


def test_bioaid_recursion_structure(bioaid_spec):
    grammar = bioaid_spec.grammar
    assert is_strictly_linear_recursive(grammar)
    graph = ProductionGraph(grammar)
    cycles = graph.cycles()
    # One mutual recursion (length 2) plus five self-loops.
    lengths = sorted(len(cycle) for cycle in cycles)
    assert lengths == [1, 1, 1, 1, 1, 2]


def test_synthetic_recursion_structure(synthetic_spec):
    grammar = synthetic_spec.grammar
    graph = ProductionGraph(grammar)
    cycles = graph.cycles()
    # nesting_depth=3 levels, each a cycle of recursion_length=2.
    assert len(cycles) == 3
    assert all(len(cycle) == 2 for cycle in cycles)


def test_recursion_summary(running_spec):
    summary = recursion_summary(running_spec.grammar)
    assert summary["recursive"] and summary["linear"] and summary["strict"]
    assert summary["recursive_modules"] == ["A", "B", "D"]
    assert [(6, 2)] in summary["cycles"]


def test_nonlinear_grammar_detected():
    from repro.model import DataEdge, Module, Production, SimpleWorkflow, WorkflowGrammar

    s = Module("S", 1, 1)
    a = Module("a", 1, 2)
    b = Module("b", 2, 1)
    # S -> workflow containing two instances of S: not linear-recursive.
    w = SimpleWorkflow(
        [("a", a), ("S1", s), ("S2", s), ("b", b)],
        [
            DataEdge("a", 1, "S1", 1),
            DataEdge("a", 2, "S2", 1),
            DataEdge("S1", 1, "b", 1),
            DataEdge("S2", 1, "b", 2),
        ],
    )
    base = SimpleWorkflow([("c", Module("c", 1, 1))], [])
    grammar = WorkflowGrammar(
        {"S": s, "a": a, "b": b, "c": Module("c", 1, 1)},
        {"S"},
        "S",
        [Production(s, w), Production(s, base)],
    )
    assert not is_linear_recursive(grammar)
    assert not is_strictly_linear_recursive(grammar)
