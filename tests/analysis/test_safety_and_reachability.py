"""Tests for safety, full dependency assignments and the reachability oracle (Section 3.1)."""

import pytest

from repro.analysis import (
    RunReachabilityOracle,
    WorkflowPortGraph,
    are_consistent,
    boundary_reachability_matrix,
    dependency_matrix,
    full_dependency_assignment,
    full_dependency_matrices,
    induced_dependency_matrix,
    is_safe,
    is_safe_view,
    view_full_assignment,
)
from repro.errors import UnsafeWorkflowError, VisibilityError
from repro.model import Derivation, default_view
from tests.conftest import derive_running


def test_running_example_is_safe(running_spec):
    assert is_safe(running_spec.grammar, running_spec.dependencies)


def test_full_assignment_of_running_example(running_spec):
    full = full_dependency_matrices(running_spec.grammar, running_spec.dependencies)
    # Every module (atomic and composite) gets a matrix.
    assert set(full) == set(running_spec.grammar.module_names)
    # C's first output depends only on its first input (the behaviour Example 8
    # exploits); its second output depends on both inputs.
    c = full["C"]
    assert c.get(1, 1) and not c.get(2, 1)
    assert c.get(1, 2) and c.get(2, 2)
    # S is fine-grained as well: its first output ignores its first input.
    s = full["S"]
    assert not s.get(1, 1) and s.get(2, 1)
    assert s.get(1, 2) and s.get(2, 2)
    # A and B are 1x1, hence forced to depend.
    assert full["A"].get(1, 1)
    assert full["B"].get(1, 1)


def test_unsafe_example_detected(unsafe_example):
    grammar, deps = unsafe_example
    assert not is_safe(grammar, deps)
    with pytest.raises(UnsafeWorkflowError):
        full_dependency_matrices(grammar, deps)


def test_nonstrict_example_is_safe(nonstrict_spec):
    # Figure 10's specification is safe (it only fails strict linearity).
    assert is_safe(nonstrict_spec.grammar, nonstrict_spec.dependencies)


def test_view_safety(running_spec, view_u2, running_views):
    assert is_safe_view(running_spec, view_u2)
    for view in running_views:
        assert is_safe_view(running_spec, view)
    full = view_full_assignment(running_spec, view_u2)
    # In U2, C is perceived as black-box, so every output of C depends on
    # every input; S's first output still bypasses C entirely.
    assert full["C"].is_all_true()
    assert not full["S"].get(1, 1) and full["S"].get(2, 2)


def test_generated_specs_are_safe(bioaid_spec, synthetic_spec):
    assert is_safe(bioaid_spec.grammar, bioaid_spec.dependencies)
    assert is_safe(synthetic_spec.grammar, synthetic_spec.dependencies)


def test_dependency_matrix_and_consistency(running_spec):
    grammar = running_spec.grammar
    matrices = {
        name: dependency_matrix(grammar.module(name), running_spec.dependencies.pairs(name))
        for name in grammar.atomic_modules
    }
    full = full_dependency_matrices(grammar, running_spec.dependencies)
    p2 = grammar.production(2)
    p3 = grammar.production(3)
    induced_2 = induced_dependency_matrix(p2, full)
    induced_3 = induced_dependency_matrix(p3, full)
    assert induced_2 == induced_3 == full["A"]
    assert are_consistent(p2.rhs, p3.rhs, full)
    assert boundary_reachability_matrix(p2.rhs, full) == induced_2


def test_workflow_port_graph_basis(running_spec):
    grammar = running_spec.grammar
    full = full_dependency_matrices(grammar, running_spec.dependencies)
    rhs = grammar.production(1).rhs
    graph = WorkflowPortGraph(rhs, full)
    # b's input reaches C's first input (direct edge b.out1 -> C.in1).
    assert graph.reaches(("in", "b", 1), ("in", "C", 1))
    # a's input cannot be reached from anything (it is a source).
    assert not graph.reaches(("in", "b", 1), ("in", "a", 1))


def test_oracle_example8_behaviour(running_spec, view_u2):
    """The reachability answer flips between the default view and U2 (Example 8)."""
    derivation = Derivation(running_spec)
    derivation.expand("S:1", 1)
    derivation.expand("C:1", 5)
    derivation.expand("D:1", 7)
    derivation.expand("E:1", 8)
    derivation.expand("A:1", 3)
    derivation.expand("C:2", 5)
    derivation.expand("D:2", 7)
    derivation.expand("E:2", 8)
    run = derivation.run
    d_in2 = run.item_at("C:1", "in", 2)   # item entering C's second input
    d_out1 = run.item_at("C:1", "out", 1)  # item leaving C's first output
    oracle_default = RunReachabilityOracle(run, default_view(running_spec), running_spec)
    oracle_u2 = RunReachabilityOracle(run, view_u2, running_spec)
    assert oracle_default.depends(d_in2, d_out1) is False
    assert oracle_u2.depends(d_in2, d_out1) is True


def test_oracle_boundary_conventions(running_spec):
    derivation = derive_running(running_spec, seed=2)
    run = derivation.run
    oracle = RunReachabilityOracle(run, default_view(running_spec), running_spec)
    initial = derivation.initial_event.input_items[0]
    final = derivation.initial_event.output_items[0]
    assert not oracle.depends(final, initial)
    assert not oracle.depends(initial, initial)
    # Nothing can depend on a final output; an initial input depends on nothing.
    assert all(not oracle.depends(final, d) for d in list(run.data_items)[:10])
    assert all(not oracle.depends(d, initial) for d in list(run.data_items)[:10])


def test_oracle_visibility_errors(running_spec, view_u2):
    derivation = Derivation(running_spec)
    derivation.expand("S:1", 1)
    derivation.expand("C:1", 5)
    run = derivation.run
    oracle = RunReachabilityOracle(run, view_u2, running_spec)
    hidden_item = run.item_at("D:1", "in", 1)
    visible_item = run.item_at("C:1", "in", 1)
    assert not oracle.is_visible(hidden_item)
    with pytest.raises(VisibilityError):
        oracle.depends(hidden_item, visible_item)
