"""Differential + corruption tests for the interval-index serving path.

The acceptance contract of the structural index is *bit-identical answers*:
an engine with ``use_structural_index=True`` must agree pair-for-pair with
the matrix decoder on every grammar — recursive chains fall back rather than
answer — including which queries *raise* and with what error.  And a flipped
byte in a persisted interval column must surface as a typed
:class:`~repro.errors.CorruptionError`, never as a wrong answer.
"""

from __future__ import annotations

import random
import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench import sample_query_pairs
from repro.core import FVLScheme, FVLVariant
from repro.core.run_labeler import RunLabeler
from repro.engine import DEFAULT_RUN, QueryEngine
from repro.errors import CorruptionError
from repro.model.projection import ViewProjection
from repro.model.views import default_view
from repro.store import MappedRunStore, checkpoint_run, compact
from repro.store.persist import _SECTION_NAMES
from repro.workloads import (
    build_bioaid_specification,
    build_nested_chain_specification,
    build_synthetic_specification,
    random_run,
    random_view,
)

# A small *recursive* member of the synthetic family: every derivation
# carries recursion edges, so the classifier must route groups to the
# decoder rather than guess.
SYN_SPEC = build_synthetic_specification(
    workflow_size=6, module_degree=2, nesting_depth=2, recursion_length=2, seed=3
)
SYN_SCHEME = FVLScheme(SYN_SPEC)

# A deep non-recursive chain grammar: the structural best case.
CHAIN_SPEC = build_nested_chain_specification(
    nesting_depth=6, chain_length=8, module_degree=3
)
CHAIN_SCHEME = FVLScheme(CHAIN_SPEC)


def _per_pair_outcomes(engine, pairs, view, variant):
    """Answer (or raised error identity) for every pair, one at a time."""
    outcomes = []
    for pair in pairs:
        try:
            outcomes.append(engine.depends_batch([pair], view, variant=variant)[0])
        except Exception as exc:  # compare errors too, not just answers
            outcomes.append((type(exc).__name__, str(exc)))
    return outcomes


def _attach_pair(scheme, derivation, tmp, use_index_file=True):
    """Two engines over the same checkpointed file: interval vs matrix.

    Hypothesis reuses one ``tmp_path`` across examples and ``checkpoint_run``
    *appends* to an existing file, so every call gets a fresh subdirectory.
    """
    run_file = str(tempfile.mkdtemp(dir=tmp)) + "/run.fvl"
    labeler = RunLabeler(scheme.index)
    for event in derivation.events:
        labeler(event)
    checkpoint_run(
        run_file, labeler.store, labeler.tree.nodes, structural_index=use_index_file
    )
    interval = QueryEngine(scheme, use_structural_index=True)
    interval.attach(run_file, DEFAULT_RUN)
    matrix = QueryEngine(scheme, use_structural_index=False)
    matrix.attach(run_file, DEFAULT_RUN)
    return run_file, interval, matrix


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(
    seed=st.integers(min_value=0, max_value=1_000),
    n_expand=st.integers(min_value=1, max_value=4),
    mode=st.sampled_from(["grey", "white", "black"]),
    variant=st.sampled_from(list(FVLVariant)),
)
def test_recursive_grammar_interval_bit_identical(tmp_path, seed, n_expand, mode, variant):
    derivation = random_run(SYN_SPEC, target_items=150, seed=seed)
    view = random_view(SYN_SPEC, n_expand, seed=seed, mode=mode)
    _, interval, matrix = _attach_pair(SYN_SCHEME, derivation, tmp_path)
    visible = sorted(ViewProjection(derivation.run, view).visible_items)
    rng = random.Random(seed)
    pairs = [(rng.choice(visible), rng.choice(visible)) for _ in range(40)]
    assert _per_pair_outcomes(interval, pairs, view, variant) == _per_pair_outcomes(
        matrix, pairs, view, variant
    )


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(seed=st.integers(min_value=0, max_value=1_000), variant=st.sampled_from(list(FVLVariant)))
def test_chain_grammar_interval_bit_identical(tmp_path, seed, variant):
    derivation = random_run(CHAIN_SPEC, target_items=200, seed=seed)
    view = default_view(CHAIN_SPEC)
    _, interval, matrix = _attach_pair(CHAIN_SCHEME, derivation, tmp_path)
    visible = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(visible, 200, seed=seed)
    got = interval.depends_batch(pairs, view, variant=variant)
    assert got == matrix.depends_batch(pairs, view, variant=variant)


def test_recursive_chains_fall_back_to_matrix_decode(tmp_path):
    """On a recursive grammar the structural path must not answer alone."""
    derivation = random_run(SYN_SPEC, target_items=400, seed=11)
    view = random_view(SYN_SPEC, 2, seed=11, mode="white")
    _, interval, _ = _attach_pair(SYN_SCHEME, derivation, tmp_path)
    visible = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(visible, 500, seed=12)
    interval.depends_batch(pairs, view)
    stats = interval.stats
    assert stats.matrix_pairs > 0, "recursive residue never reached the decoder"


def test_chain_grammar_is_mostly_structural(tmp_path):
    derivation = random_run(CHAIN_SPEC, target_items=300, seed=5)
    view = default_view(CHAIN_SPEC)
    _, interval, matrix = _attach_pair(CHAIN_SCHEME, derivation, tmp_path)
    visible = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(visible, 600, seed=6)
    assert interval.depends_batch(pairs, view) == matrix.depends_batch(pairs, view)
    stats = interval.stats
    assert stats.structural_pairs > stats.matrix_pairs
    assert matrix.stats.structural_pairs == 0


# -- corruption: loud failure, never a wrong answer ----------------------------


def _section_extent(run_file, wanted):
    with MappedRunStore(run_file, verify="off") as mapped:
        for sid, parts in sorted(mapped._extents.items()):
            if _SECTION_NAMES.get(sid) == wanted:
                for part in parts:
                    if part.nbytes:
                        return part.offset, part.nbytes
    raise AssertionError(f"no extent for section {wanted!r}")


def _flip_byte(path, offset):
    with open(path, "r+b") as handle:
        handle.seek(offset)
        original = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([original ^ 0xFF]))


@pytest.mark.parametrize("section", ["node.pre", "node.post", "node.level"])
def test_flipped_index_byte_raises_never_misanswers(tmp_path, section):
    spec = build_bioaid_specification()
    scheme = FVLScheme(spec)
    derivation = random_run(spec, 300, seed=21)
    view = random_view(spec, 6, seed=22, mode="grey", name="flip-view")
    run_file, _, _ = _attach_pair(scheme, derivation, tmp_path)
    offset, nbytes = _section_extent(run_file, section)
    _flip_byte(run_file, offset + nbytes // 2)
    items = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(items, 200, seed=23)
    # Eager verification refuses the attach outright...
    with pytest.raises(CorruptionError):
        QueryEngine(scheme, use_structural_index=True).attach(
            run_file, DEFAULT_RUN, verify="attach"
        )
    # ...and a lazy attach raises on the first batch that builds the index —
    # the corrupt column must never steer a query.
    engine = QueryEngine(scheme, use_structural_index=True)
    engine.attach(run_file, DEFAULT_RUN)
    with pytest.raises(CorruptionError):
        engine.depends_batch(pairs, view)


def test_flipped_index_byte_fails_deep_verify(tmp_path):
    from repro.store import verify_run

    derivation = random_run(CHAIN_SPEC, target_items=150, seed=31)
    run_file, _, _ = _attach_pair(CHAIN_SCHEME, derivation, tmp_path)
    verify_run(run_file)
    offset, nbytes = _section_extent(run_file, "node.pre")
    _flip_byte(run_file, offset + nbytes // 2)
    with pytest.raises(CorruptionError):
        verify_run(run_file)


# -- compaction upgrades pre-index files ---------------------------------------


def test_compaction_upgrades_pre_index_file(tmp_path):
    spec = build_bioaid_specification()
    scheme = FVLScheme(spec)
    derivation = random_run(spec, 300, seed=41)
    view = random_view(spec, 6, seed=42, mode="grey", name="upgrade-view")
    events = derivation.events
    cut = len(events) // 2
    run_file = str(tmp_path / "preindex.fvl")
    labeler = RunLabeler(scheme.index)
    for event in events[:cut]:
        labeler(event)
    checkpoint_run(run_file, labeler.store, labeler.tree.nodes, structural_index=False)
    for event in events[cut:]:
        labeler(event)
    checkpoint_run(run_file, labeler.store, labeler.tree.nodes, structural_index=False)
    with MappedRunStore(run_file) as mapped:
        assert mapped.structural_index() is None
    items = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(items, 300, seed=43)
    before_engine = QueryEngine(scheme)
    before_engine.attach(run_file, DEFAULT_RUN)
    before = before_engine.depends_batch(pairs, view)
    before_engine.detach(DEFAULT_RUN)

    assert compact(run_file).compacted
    with MappedRunStore(run_file) as mapped:
        intervals = mapped.structural_index()
        assert intervals is not None
        from repro.index import compute_tree_intervals

        parent = np.asarray(mapped.nodes.columns()["parent"], dtype=np.int64)
        for got, want in zip(intervals, compute_tree_intervals(parent)):
            assert np.array_equal(np.asarray(got), want)
    upgraded = QueryEngine(scheme, use_structural_index=True)
    upgraded.attach(run_file, DEFAULT_RUN)
    assert upgraded.depends_batch(pairs, view) == before
    assert upgraded.stats.structural_pairs > 0


# -- the memoized visibility fold matches the per-item predicate ---------------


def test_visible_mask_matches_is_visible_batch(tmp_path):
    derivation = random_run(CHAIN_SPEC, target_items=200, seed=51)
    view = default_view(CHAIN_SPEC)
    _, engine, _ = _attach_pair(CHAIN_SCHEME, derivation, tmp_path)
    uids = list(range(1, derivation.run.n_data_items + 1))
    mask = engine.visible_mask(view)
    assert mask.tolist() == engine.is_visible_batch(uids, view)
    # Memoized: a second call reuses the per-path retained fold and agrees.
    assert engine.visible_mask(view).tolist() == mask.tolist()
