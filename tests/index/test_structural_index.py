"""Unit tests for the structural interval index primitives.

``compute_tree_intervals`` is differentially checked against a naive
recursive DFS on random topologically-ordered forests, the packed edge-word
layout is pinned to :mod:`repro.store.path_table` (the index module repeats
the encoding to stay import-cycle free), and ``classify_matrix`` /
``StructuralIndex.build`` edge cases are nailed down.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import (
    CLASS_FALSE,
    CLASS_MIXED,
    CLASS_TRUE,
    StructuralIndex,
    classify_matrix,
    compute_tree_intervals,
    tree_levels,
)


# -- interval columns vs a naive DFS reference ---------------------------------


def _reference_intervals(parent):
    """pre/post/level by explicit recursive DFS (children in row-id order)."""
    n = len(parent)
    children = [[] for _ in range(n)]
    roots = []
    for row, p in enumerate(parent):
        (roots if p < 0 else children[p]).append(row)
    pre = [0] * n
    post = [0] * n
    level = [0] * n
    counter = 0

    def visit(row, depth):
        nonlocal counter
        pre[row] = counter
        level[row] = depth
        counter += 1
        for child in children[row]:
            visit(child, depth + 1)
        post[row] = counter - 1

    for root in roots:
        visit(root, 0)
    return pre, post, level


@st.composite
def parent_forests(draw):
    """Random topologically-ordered parent arrays (possibly multi-root)."""
    n = draw(st.integers(min_value=0, max_value=120))
    parent = []
    for row in range(n):
        # -1 opens a new root; anything else attaches below an earlier row,
        # keeping the array topologically ordered by construction.
        parent.append(draw(st.integers(min_value=-1, max_value=row - 1)))
    return parent


@settings(max_examples=80, deadline=None)
@given(parent=parent_forests())
def test_intervals_match_recursive_dfs(parent):
    pre, post, level = compute_tree_intervals(np.asarray(parent, dtype=np.int64))
    ref_pre, ref_post, ref_level = _reference_intervals(parent)
    assert pre.tolist() == ref_pre
    assert post.tolist() == ref_post
    assert level.tolist() == ref_level


@settings(max_examples=40, deadline=None)
@given(parent=parent_forests(), data=st.data())
def test_interval_containment_is_ancestry(parent, data):
    """pre[a] <= pre[b] <= post[a]  <=>  a is an ancestor-or-self of b."""
    if not parent:
        return
    pre, post, _ = compute_tree_intervals(np.asarray(parent, dtype=np.int64))
    a = data.draw(st.integers(0, len(parent) - 1))
    b = data.draw(st.integers(0, len(parent) - 1))
    walk = b
    is_anc = False
    while walk >= 0:
        if walk == a:
            is_anc = True
            break
        walk = parent[walk]
    assert (pre[a] <= pre[b] <= post[a]) == is_anc


def test_tree_levels_rejects_cyclic_parent():
    # Rows 1 and 2 point at each other: their depths can never resolve, so
    # the per-level passes must fail loudly instead of spinning forever.
    with pytest.raises(ValueError, match="topologically ordered"):
        tree_levels(np.asarray([-1, 2, 1], dtype=np.int64))


def test_empty_forest_yields_empty_columns():
    pre, post, level = compute_tree_intervals(np.asarray([], dtype=np.int64))
    assert pre.size == post.size == level.size == 0


# -- the packed edge-word layout is pinned to the store's ----------------------


def test_packed_word_layout_matches_path_table():
    from repro.index import structural
    from repro.store import path_table

    assert structural._KIND_PRODUCTION == path_table.KIND_PRODUCTION
    assert structural._FIELD_BITS == path_table._FIELD_BITS
    assert structural._FIELD_MASK == path_table._FIELD_MASK
    # Round-trip one production edge through the store's encoder and the
    # index's decoder: kind bit 0, k at bit 1, i at bit 17.
    k, i = 37, 11
    word = path_table.KIND_PRODUCTION | k << 1 | i << 17
    assert (word & 1) == structural._KIND_PRODUCTION
    assert (word >> 1) & structural._FIELD_MASK == k
    assert word >> (structural._FIELD_BITS + 1) == i


# -- matrix classification -----------------------------------------------------


class _FakeMatrix:
    def __init__(self, all_true, all_false):
        self._t, self._f = all_true, all_false

    def is_all_true(self):
        return self._t

    def is_all_false(self):
        return self._f


def test_classify_matrix_three_way():
    assert classify_matrix(lambda: _FakeMatrix(True, False)) == CLASS_TRUE
    assert classify_matrix(lambda: _FakeMatrix(False, True)) == CLASS_FALSE
    assert classify_matrix(lambda: _FakeMatrix(False, False)) == CLASS_MIXED


def test_classify_matrix_zero_dimension_is_annihilator():
    # A zero-dim matrix is vacuously all-true AND all-false; in a chain
    # product it annihilates, so CLASS_FALSE must win.
    assert classify_matrix(lambda: _FakeMatrix(True, True)) == CLASS_FALSE


def test_classify_matrix_raising_factory_is_mixed():
    def boom():
        raise RuntimeError("dropped production")

    assert classify_matrix(boom) == CLASS_MIXED


# -- index build refusals ------------------------------------------------------


def _tiny_trie():
    # Root plus two production edges.
    parent = np.asarray([-1, 0, 0], dtype=np.int64)
    packed = np.asarray([-1, 1 << 1, 2 << 1], dtype=np.int64)
    return parent, packed


def test_build_refuses_duplicate_path_ids():
    trie_parent, trie_packed = _tiny_trie()
    node_parent = np.asarray([-1, 0], dtype=np.int64)
    node_path = np.asarray([1, 1], dtype=np.int64)  # two nodes, one path id
    assert (
        StructuralIndex.build(trie_parent, trie_packed, node_parent, node_path)
        is None
    )


def test_build_refuses_out_of_range_path_ids():
    trie_parent, trie_packed = _tiny_trie()
    node_parent = np.asarray([-1, 0], dtype=np.int64)
    node_path = np.asarray([1, 99], dtype=np.int64)
    assert (
        StructuralIndex.build(trie_parent, trie_packed, node_parent, node_path)
        is None
    )


def test_build_scatters_intervals_by_path_id():
    trie_parent, trie_packed = _tiny_trie()
    node_parent = np.asarray([-1, 0], dtype=np.int64)
    node_path = np.asarray([2, 1], dtype=np.int64)  # node 0 -> path 2, node 1 -> path 1
    index = StructuralIndex.build(trie_parent, trie_packed, node_parent, node_path)
    assert index is not None
    pre, post, level = compute_tree_intervals(node_parent)
    assert index.pre[2] == pre[0] and index.post[2] == post[0]
    assert index.pre[1] == pre[1] and index.level[1] == level[1]
    assert index.is_ancestor(2, 1) and not index.is_ancestor(1, 2)
    assert index.is_ancestor(0, 1)  # the empty path is everybody's prefix


# -- DecodeCache hit accounting stays bounded ----------------------------------


def test_pair_hit_accounting_decays_instead_of_leaking():
    from repro.core.decoder import DecodeCache

    cache = DecodeCache(max_entries=None, max_pair_hits=8)
    # Counters only accrue for keys whose matrix is actually cached.
    cache.note_pair_use(("missing",), 5)
    assert not cache.pair_hits
    hot = ("hot",)
    cache.pair_matrices[hot] = None
    for n in range(20):
        key = ("k", n)
        cache.pair_matrices[key] = None
        cache.note_pair_use(key, 1)
        cache.note_pair_use(hot, 100)
    assert len(cache.pair_hits) <= cache.max_pair_hits + 1
    # Cold single-hit keys aged out; the hot key survived every sweep with
    # the top rank.
    assert max(cache.pair_hits, key=cache.pair_hits.get) == hot
