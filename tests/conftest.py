"""Shared fixtures: paper examples, generated workloads, derivation helpers."""

from __future__ import annotations

import random

import pytest

from repro import Derivation, FVLScheme
from repro.workloads import (
    build_bioaid_specification,
    build_nonstrict_example,
    build_running_example,
    build_synthetic_specification,
    build_unsafe_example,
    running_example_view_u2,
    running_example_views,
)


@pytest.fixture(scope="session")
def running_spec():
    """The running example of Figure 2 (session-scoped; treat as read-only)."""
    return build_running_example()


@pytest.fixture(scope="session")
def running_scheme(running_spec):
    return FVLScheme(running_spec)


@pytest.fixture(scope="session")
def running_views(running_spec):
    return running_example_views(running_spec)


@pytest.fixture(scope="session")
def view_u2(running_spec):
    return running_example_view_u2(running_spec)


@pytest.fixture(scope="session")
def unsafe_example():
    return build_unsafe_example()


@pytest.fixture(scope="session")
def nonstrict_spec():
    return build_nonstrict_example()


@pytest.fixture(scope="session")
def bioaid_spec():
    return build_bioaid_specification()


@pytest.fixture(scope="session")
def synthetic_spec():
    return build_synthetic_specification(
        workflow_size=8, module_degree=3, nesting_depth=3, recursion_length=2
    )


def derive_running(spec, seed: int = 0, max_steps: int = 30) -> Derivation:
    """A random, complete derivation of the running example (helper, not a fixture)."""
    rng = random.Random(seed)
    derivation = Derivation(spec)
    steps = 0
    while not derivation.is_complete and steps < max_steps:
        pending = derivation.pending_instances()
        uid = rng.choice(pending)
        instance = derivation.run.instance(uid)
        candidates = [k for k, _ in spec.grammar.productions_for(instance.module_name)]
        if steps > max_steps // 2 and len(candidates) > 1:
            k = candidates[-1]
        else:
            k = rng.choice(candidates)
        derivation.expand(uid, k)
        steps += 1
    while not derivation.is_complete:
        uid = derivation.pending_instances()[0]
        instance = derivation.run.instance(uid)
        candidates = [k for k, _ in spec.grammar.productions_for(instance.module_name)]
        derivation.expand(uid, candidates[-1])
    return derivation


@pytest.fixture()
def running_derivation(running_spec):
    """A fresh, moderately sized complete derivation of the running example."""
    return derive_running(running_spec, seed=1)
