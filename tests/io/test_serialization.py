"""Round-trip tests for the JSON / XML codecs and the bit-exact label codec."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FVLScheme
from repro.io import (
    LabelCodec,
    derivation_from_dict,
    derivation_to_dict,
    dump_specification,
    dump_specification_xml,
    elias_gamma_bits,
    load_specification,
    load_specification_xml,
    specification_from_dict,
    specification_from_xml,
    specification_to_dict,
    specification_to_xml,
    view_from_dict,
    view_from_xml,
    view_to_dict,
    view_to_xml,
)
from repro.workloads import build_running_example, random_run, running_example_view_u2
from tests.conftest import derive_running


def _assert_same_spec(a, b):
    assert sorted(a.grammar.module_names) == sorted(b.grammar.module_names)
    assert a.grammar.composite_modules == b.grammar.composite_modules
    assert a.grammar.start == b.grammar.start
    assert len(a.grammar.productions) == len(b.grammar.productions)
    assert a.dependencies == b.dependencies
    for pa, pb in zip(a.grammar.productions, b.grammar.productions):
        assert pa.lhs.name == pb.lhs.name
        assert pa.rhs.topological_order == pb.rhs.topological_order
        assert pa.rhs.edges == pb.rhs.edges
        assert pa.rhs.initial_inputs == pb.rhs.initial_inputs


def test_specification_json_roundtrip(running_spec):
    data = specification_to_dict(running_spec)
    _assert_same_spec(running_spec, specification_from_dict(data))


def test_specification_json_file_roundtrip(tmp_path, bioaid_spec):
    path = tmp_path / "spec.json"
    dump_specification(bioaid_spec, str(path))
    _assert_same_spec(bioaid_spec, load_specification(str(path)))


def test_specification_xml_roundtrip(running_spec):
    element = specification_to_xml(running_spec)
    _assert_same_spec(running_spec, specification_from_xml(element))


def test_specification_xml_file_roundtrip(tmp_path, running_spec):
    path = tmp_path / "spec.xml"
    dump_specification_xml(running_spec, str(path))
    _assert_same_spec(running_spec, load_specification_xml(str(path)))


def test_view_roundtrips(running_spec, view_u2):
    restored = view_from_dict(view_to_dict(view_u2))
    assert restored.visible_composites == view_u2.visible_composites
    assert restored.dependencies == view_u2.dependencies
    restored_xml = view_from_xml(view_to_xml(view_u2))
    assert restored_xml.visible_composites == view_u2.visible_composites
    assert restored_xml.dependencies == view_u2.dependencies


def test_derivation_roundtrip(running_spec):
    derivation = derive_running(running_spec, seed=4)
    data = derivation_to_dict(derivation)
    replayed = derivation_from_dict(running_spec, data)
    assert replayed.run.n_data_items == derivation.run.n_data_items
    assert replayed.run.records == derivation.run.records


def test_elias_gamma_bits():
    assert elias_gamma_bits(1) == 1
    assert elias_gamma_bits(2) == 3
    assert elias_gamma_bits(7) == 5
    with pytest.raises(ValueError):
        elias_gamma_bits(0)


def test_label_codec_roundtrip_and_sizes(running_spec, running_scheme):
    codec = LabelCodec(running_scheme.index)
    derivation = derive_running(running_spec, seed=9)
    labeler = running_scheme.label_run(derivation)
    n = derivation.run.n_data_items
    for uid in derivation.run.data_items:
        label = labeler.label(uid)
        payload, bits = codec.encode(label)
        assert codec.decode(payload, bits) == label
        assert len(payload) == math.ceil(bits / 8)
        # The reported analytic size matches the encoder's output exactly.
        assert bits == codec.data_label_bits(label)


@settings(max_examples=30, deadline=None)
@given(value=st.integers(min_value=1, max_value=10**6))
def test_elias_gamma_matches_formula(value):
    assert elias_gamma_bits(value) == 2 * int(math.log2(value)) + 1


def test_codec_scales_logarithmically(bioaid_spec):
    scheme = FVLScheme(bioaid_spec)
    codec = LabelCodec(scheme.index)
    small = random_run(bioaid_spec, 200, seed=1)
    large = random_run(bioaid_spec, 3200, seed=1)
    small_bits = max(
        codec.data_label_bits(label)
        for label in scheme.label_run(small).labels.values()
    )
    large_bits = max(
        codec.data_label_bits(label)
        for label in scheme.label_run(large).labels.values()
    )
    # 16x more data items should cost only a handful of extra bits.
    assert large_bits - small_bits <= 20
