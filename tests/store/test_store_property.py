"""Property tests: store-backed labels are bit-identical to object labels.

For random runs of the BioAID-like and running-example specifications, the
columnar :class:`LabelStore` must be observationally identical to the seed's
per-item value objects: the same materialised labels, the same per-label
codec encodings, the same ``depends``/``depends_batch`` answers, and a
lossless ``encode_run``/``decode_run`` round trip.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FVLScheme, FVLVariant
from repro.engine import DEFAULT_RUN, QueryEngine
from repro.io import LabelCodec
from repro.model.projection import ViewProjection
from repro.workloads import build_bioaid_specification, random_run, random_view

from repro.bench import sample_query_pairs


@pytest.fixture(scope="module")
def spec():
    return build_bioaid_specification()


@pytest.fixture(scope="module")
def scheme(spec):
    return FVLScheme(spec)


@pytest.fixture(scope="module")
def codec(scheme):
    return LabelCodec(scheme.index)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6), size=st.sampled_from([60, 150, 400]))
def test_store_labels_bit_identical_to_object_labels(spec, scheme, codec, seed, size):
    derivation = random_run(spec, size, seed=seed)
    columnar = scheme.label_run(derivation)
    objects = scheme.label_run(derivation, columnar=False)
    assert len(columnar) == len(objects) == derivation.run.n_data_items
    for uid in derivation.run.data_items:
        store_label = columnar.label(uid)
        object_label = objects.label(uid)
        assert store_label == object_label
        assert codec.encode(store_label) == codec.encode(object_label)
        assert codec.data_label_bits(store_label) == codec.data_label_bits(object_label)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_store_backed_depends_matches_object_depends(spec, scheme, seed):
    derivation = random_run(spec, 250, seed=seed)
    columnar = scheme.label_run(derivation)
    objects = scheme.label_run(derivation, columnar=False)
    view = random_view(spec, 6, seed=seed, mode="grey", name=f"prop-{seed}")
    view_label = scheme.label_view(view, FVLVariant.DEFAULT)
    items = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(items, 120, seed=seed)

    engine = QueryEngine(scheme)
    engine.add_run(DEFAULT_RUN, derivation)
    batched = engine.depends_batch(pairs, view, variant=FVLVariant.DEFAULT)
    for (d1, d2), answer in zip(pairs, batched):
        expected = scheme.depends(objects.label(d1), objects.label(d2), view_label)
        assert answer == expected
        # Materialised store labels feed the one-pair predicate identically.
        assert scheme.depends(columnar.label(d1), columnar.label(d2), view_label) == expected


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6), size=st.sampled_from([50, 200, 500]))
def test_encode_run_decode_run_lossless(spec, scheme, codec, seed, size):
    derivation = random_run(spec, size, seed=seed)
    labeler = scheme.label_run(derivation)
    store = labeler.store
    payload, bits = codec.encode_run(store)
    restored = codec.decode_run(payload, bits)
    assert len(restored) == len(store)
    assert list(restored.uids()) == list(store.uids())
    for uid in derivation.run.data_items:
        assert restored.row(uid) == store.row(uid)
        assert restored.label(uid) == store.label(uid)
    # Re-encoding the restored store is bit-identical.
    assert codec.encode_run(restored) == (payload, bits)


def test_bulk_encoding_beats_per_label_total(scheme, codec, spec):
    derivation = random_run(spec, 800, seed=3)
    labeler = scheme.label_run(derivation)
    _, bulk_bits = codec.encode_run(labeler.store)
    per_label_bits = sum(
        codec.data_label_bits(labeler.label(uid)) for uid in derivation.run.data_items
    )
    assert bulk_bits < per_label_bits
