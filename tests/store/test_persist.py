"""Unit tests for the persistent run store and the engine's attach/checkpoint."""

from __future__ import annotations

import struct

import pytest

import repro.engine.engine as engine_module
from repro.core import FVLScheme, FVLVariant
from repro.core.run_labeler import RunLabeler
from repro.engine import DEFAULT_RUN, QueryEngine
from repro.errors import LabelingError, SerializationError
from repro.io import LabelCodec
from repro.model.projection import ViewProjection
from repro.store import (
    FORMAT_MAGIC,
    PAGE_SIZE,
    LabelStore,
    MappedLabelStore,
    MappedRunStore,
    PathTable,
    checkpoint_run,
)
from repro.bench import sample_query_pairs
from repro.workloads import build_bioaid_specification, random_run, random_view


@pytest.fixture(scope="module")
def spec():
    return build_bioaid_specification()


@pytest.fixture(scope="module")
def scheme(spec):
    return FVLScheme(spec)


@pytest.fixture()
def labelled(scheme, spec):
    derivation = random_run(spec, 300, seed=21)
    labeler = scheme.label_run(derivation)
    return derivation, labeler


# -- writer validation -------------------------------------------------------


def test_checkpoint_requires_columnar_store(labelled, tmp_path, scheme, spec):
    derivation, _ = labelled
    objects = scheme.label_run(derivation, columnar=False)
    with pytest.raises(SerializationError):
        checkpoint_run(tmp_path / "x.fvl", objects.store, None)


def test_checkpoint_creates_and_appends_watermarked_segments(labelled, tmp_path):
    derivation, labeler = labelled
    run_file = tmp_path / "run.fvl"
    first = checkpoint_run(run_file, labeler.store, labeler.tree.nodes)
    assert first.created and first.wrote_segment
    assert first.delta_items == len(labeler.store)
    # No growth -> no new segment, file untouched.
    size = run_file.stat().st_size
    again = checkpoint_run(run_file, labeler.store, labeler.tree.nodes)
    assert not again.created and not again.wrote_segment
    assert run_file.stat().st_size == size
    # Sections are page-aligned: the file is a whole number of pages.
    assert size % PAGE_SIZE == 0


def test_checkpoint_rejects_a_different_run(labelled, tmp_path, scheme, spec):
    _, labeler = labelled
    run_file = tmp_path / "run.fvl"
    checkpoint_run(run_file, labeler.store, labeler.tree.nodes)
    other = scheme.label_run(random_run(spec, 60, seed=5))
    with pytest.raises(SerializationError, match="fewer"):
        checkpoint_run(run_file, other.store, other.tree.nodes)


def test_checkpoint_rejects_node_presence_flips(labelled, tmp_path):
    _, labeler = labelled
    run_file = tmp_path / "run.fvl"
    checkpoint_run(run_file, labeler.store, labeler.tree.nodes)
    with pytest.raises(SerializationError, match="node"):
        checkpoint_run(run_file, labeler.store, None)


def test_checkpoint_batch_rejects_duplicate_paths(labelled, tmp_path, scheme, spec):
    _, labeler = labelled
    other = scheme.label_run(random_run(spec, 60, seed=6))
    shared = tmp_path / "shared.fvl"
    with pytest.raises(SerializationError, match="own file"):
        from repro.store import checkpoint_batch

        checkpoint_batch(
            [
                (shared, labeler.store, labeler.tree.nodes),
                (shared, other.store, other.tree.nodes),
            ]
        )
    assert not shared.exists()


def test_reader_accepts_version_1_headers_as_generation_zero(labelled, tmp_path):
    """v1 headers (no generation field) read back as generation 0."""
    import struct as struct_module

    _, labeler = labelled
    run_file = tmp_path / "v1.fvl"
    checkpoint_run(run_file, labeler.store, labeler.tree.nodes)
    raw = bytearray(run_file.read_bytes())
    raw[8:12] = struct_module.pack("<I", 1)  # rewrite the version word
    v1_file = tmp_path / "as-v1.fvl"
    v1_file.write_bytes(bytes(raw))
    with MappedRunStore(v1_file) as mapped:
        assert mapped.generation == 0
        assert mapped.n_items == len(labeler.store)


def test_reader_rejects_bad_magic_and_version(labelled, tmp_path):
    _, labeler = labelled
    run_file = tmp_path / "run.fvl"
    checkpoint_run(run_file, labeler.store, labeler.tree.nodes)
    raw = bytearray(run_file.read_bytes())
    bad_magic = tmp_path / "bad-magic.fvl"
    bad_magic.write_bytes(b"NOTARUN!" + raw[8:])
    with pytest.raises(SerializationError, match="magic"):
        MappedRunStore(bad_magic)
    bad_version = tmp_path / "bad-version.fvl"
    corrupted = bytearray(raw)
    corrupted[8:12] = struct.pack("<I", 99)
    assert corrupted[:8] == FORMAT_MAGIC
    bad_version.write_bytes(bytes(corrupted))
    with pytest.raises(SerializationError, match="version"):
        MappedRunStore(bad_version)
    truncated = tmp_path / "truncated.fvl"
    truncated.write_bytes(bytes(raw[: PAGE_SIZE + 16]))
    with pytest.raises(SerializationError):
        MappedRunStore(truncated)


def test_mapped_store_is_read_only(labelled, tmp_path):
    _, labeler = labelled
    run_file = tmp_path / "run.fvl"
    checkpoint_run(run_file, labeler.store, labeler.tree.nodes)
    with MappedRunStore(run_file) as mapped:
        assert isinstance(mapped.store, MappedLabelStore)
        assert isinstance(mapped.store, LabelStore)  # engine fast path applies
        with pytest.raises(SerializationError):
            mapped.store.append(10**6, 1, 1, 2, 1)
        with pytest.raises(SerializationError):
            mapped.table.extend_production(0, 1, 1)
        with pytest.raises(SerializationError):
            mapped.nodes.append_recursive(0, 0, 1, 1)
        with pytest.raises(SerializationError):
            checkpoint_run(tmp_path / "copy.fvl", mapped.store, None)


def test_mapped_store_round_trips_through_the_bulk_codec(labelled, tmp_path, scheme):
    _, labeler = labelled
    run_file = tmp_path / "run.fvl"
    checkpoint_run(run_file, labeler.store, labeler.tree.nodes)
    codec = LabelCodec(scheme.index)
    expected = codec.encode_run(labeler.store)
    with MappedRunStore(run_file) as mapped:
        assert codec.encode_run(mapped.store) == expected


def test_page_aligned_final_section_is_not_clobbered(tmp_path):
    """A last section ending exactly on a page boundary keeps its final byte.

    1024 dense rows make each i32 label column exactly one page; the pad
    write used to overwrite the final byte of the last section (regression).
    """
    table = PathTable()
    a = table.extend_production(0, 1, 1)
    store = LabelStore(table)
    marker = 1 << 24  # nonzero high byte: a clobber would zero it
    for uid in range(1024):
        store.append(uid, a, 1, a, marker if uid == 1023 else 1)
    run_file = tmp_path / "aligned.fvl"
    checkpoint_run(run_file, store, None)
    with MappedRunStore(run_file) as mapped:
        assert tuple(mapped.row(1023)) == (a, 1, a, marker)


def test_sparse_stores_round_trip(tmp_path):
    table = PathTable()
    a = table.extend_production(0, 1, 1)
    b = table.extend_production(0, 1, 2)
    store = LabelStore(table)
    store.append(5, a, 1, b, 2)
    store.append(42, b, 1, a, 1)  # gap -> sparse
    assert not store.is_dense
    run_file = tmp_path / "sparse.fvl"
    checkpoint_run(run_file, store, None)
    with MappedRunStore(run_file) as mapped:
        assert not mapped.store.is_dense
        assert list(mapped.store.uids()) == [5, 42]
        assert tuple(mapped.store.row(42)) == (b, 1, a, 1)
        assert mapped.nodes is None


# -- engine integration ------------------------------------------------------


@pytest.fixture()
def engine_setup(scheme, spec):
    derivation = random_run(spec, 300, seed=21)
    view = random_view(spec, 6, seed=9, mode="grey", name="persist-view")
    items = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(items, 400, seed=13)
    engine = QueryEngine(scheme)
    engine.add_run(DEFAULT_RUN, derivation)
    return engine, derivation, view, pairs


def test_attached_shard_answers_bit_identical(engine_setup, tmp_path):
    engine, _, view, pairs = engine_setup
    expected = engine.depends_batch(pairs, view, variant=FVLVariant.DEFAULT)
    run_file = tmp_path / "shard.fvl"
    engine.checkpoint(run_file)
    mapped = engine.attach(run_file, run_id="disk")
    assert mapped.n_items == len(engine.run_labeler().store)
    got = engine.depends_batch(pairs, view, run="disk", variant=FVLVariant.DEFAULT)
    assert got == expected
    # Space-efficient variant exercises the memoized decode path too.
    expected_se = engine.depends_batch(pairs, view, variant=FVLVariant.SPACE_EFFICIENT)
    got_se = engine.depends_batch(
        pairs, view, run="disk", variant=FVLVariant.SPACE_EFFICIENT
    )
    assert got_se == expected_se
    with pytest.raises(LabelingError):
        engine.run_labeler("disk")
    with pytest.raises(LabelingError):
        engine.checkpoint(run_file, run_id="disk")
    with pytest.raises(LabelingError):
        engine.attach(run_file, run_id="disk")  # name taken


def test_attach_rejects_a_different_specification(engine_setup, tmp_path):
    from repro.workloads import build_running_example

    engine, _, _, _ = engine_setup
    run_file = tmp_path / "other-spec.fvl"
    engine.checkpoint(run_file)
    other = QueryEngine(FVLScheme(build_running_example()))
    with pytest.raises(LabelingError, match="different"):
        other.attach(run_file, run_id="disk")
    # The same specification (even a fresh engine) attaches fine.
    same = QueryEngine(engine.scheme)
    assert same.attach(run_file, run_id="disk").fingerprint != 0


def test_incremental_checkpoint_then_attach_is_lossless(scheme, spec, tmp_path):
    derivation = random_run(spec, 300, seed=3)
    events = derivation.events
    half = len(events) // 2
    labeler = RunLabeler(scheme.index)
    for event in events[:half]:
        labeler(event)
    run_file = tmp_path / "grow.fvl"
    checkpoint_run(run_file, labeler.store, labeler.tree.nodes)
    for event in events[half:]:
        labeler(event)
    delta = checkpoint_run(run_file, labeler.store, labeler.tree.nodes)
    assert delta.wrote_segment and delta.delta_items > 0

    view = random_view(spec, 6, seed=9, mode="grey", name="grow-view")
    items = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(items, 300, seed=1)

    reference = QueryEngine(scheme)
    reference.add_run(DEFAULT_RUN, derivation)
    expected = reference.depends_batch(pairs, view)

    served = QueryEngine(scheme)
    served.attach(run_file, run_id=DEFAULT_RUN)
    assert served.depends_batch(pairs, view) == expected


def test_vectorised_grouping_matches_scalar_grouping(engine_setup, monkeypatch, tmp_path):
    engine, _, view, pairs = engine_setup
    expected = engine.depends_batch(pairs, view, variant=FVLVariant.DEFAULT)
    monkeypatch.setattr(engine_module, "VECTOR_GROUP_THRESHOLD", 1)
    fresh = QueryEngine(engine.scheme)
    fresh.add_run(DEFAULT_RUN, engine._shards[DEFAULT_RUN].derivation)
    # A live (uncompacted) store stays on the scalar path — the read path
    # must not mutate a store that may still be ingesting.
    store = fresh.run_labeler().store
    assert not store.is_compacted
    assert fresh.depends_batch(pairs, view, variant=FVLVariant.DEFAULT) == expected
    assert not store.is_compacted
    # Sealing the run enables the vectorised path; answers are identical.
    store.compact()
    assert fresh.depends_batch(pairs, view, variant=FVLVariant.DEFAULT) == expected
    # Mapped shards are always sealed, so large batches vectorise there too.
    run_file = tmp_path / "vector.fvl"
    fresh.checkpoint(run_file)
    fresh.attach(run_file, run_id="disk")
    assert (
        fresh.depends_batch(pairs, view, run="disk", variant=FVLVariant.DEFAULT)
        == expected
    )
    # Unknown uids still raise the precise scalar error.
    with pytest.raises(LabelingError):
        fresh.depends_batch([(10**7, 1)], view)
