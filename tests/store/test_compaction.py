"""Unit tests for run-file compaction (merge, verify, atomic swap, GC)."""

from __future__ import annotations

import os

import pytest

import repro.store.compaction as compaction_module
from repro.core import FVLScheme, FVLVariant
from repro.core.run_labeler import RunLabeler
from repro.engine import DEFAULT_RUN, QueryEngine
from repro.errors import SerializationError
from repro.model.projection import ViewProjection
from repro.store import (
    LabelStore,
    MappedRunStore,
    PathTable,
    checkpoint_run,
    compact,
    run_file_info,
)
from repro.bench import sample_query_pairs
from repro.workloads import build_bioaid_specification, random_run, random_view


@pytest.fixture(scope="module")
def spec():
    return build_bioaid_specification()


@pytest.fixture(scope="module")
def scheme(spec):
    return FVLScheme(spec)


def _segmented_run(scheme, derivation, path, n_segments):
    """Checkpoint a derivation in ``n_segments`` incremental slices."""
    events = derivation.events
    labeler = RunLabeler(scheme.index)
    step = max(1, len(events) // n_segments)
    written = 0
    for lo in range(0, len(events), step):
        for event in events[lo : lo + step]:
            labeler(event)
        result = checkpoint_run(path, labeler.store, labeler.tree.nodes)
        written += result.wrote_segment
    return labeler, written


def test_compact_merges_to_one_extent_per_column(scheme, spec, tmp_path):
    derivation = random_run(spec, 400, seed=11)
    path = tmp_path / "chain.fvl"
    labeler, _ = _segmented_run(scheme, derivation, path, 5)
    before = run_file_info(path)
    assert before.n_segments >= 4

    result = compact(path)
    assert result.compacted
    assert result.segments_before == before.n_segments
    assert result.generation == 1
    assert result.bytes_after < result.bytes_before
    assert result.space_amplification > 1.0

    with MappedRunStore(path) as mapped:
        assert mapped.n_segments == 1
        assert mapped.generation == 1
        assert max(mapped.extents_per_column().values()) == 1
        assert mapped.n_items == len(labeler.store)
        assert mapped.nodes is not None
        assert mapped.nodes.max_fanout() == labeler.tree.max_fanout()
        # Intern lists survive the blob merge.
        assert mapped.nodes.module_names == labeler.tree.nodes.module_names
        assert mapped.nodes.uid_slice(0) == labeler.tree.nodes.uid_slice(0)


def test_compacted_shard_answers_bit_identically(scheme, spec, tmp_path):
    """Acceptance: depends_batch / is_visible identical across the rewrite."""
    derivation = random_run(spec, 400, seed=12)
    view = random_view(spec, 6, seed=5, mode="grey", name="compact-view")
    items = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(items, 400, seed=2)
    all_uids = list(range(1, derivation.run.n_data_items + 1))

    reference = QueryEngine(scheme)
    reference.add_run(DEFAULT_RUN, derivation)
    expected = reference.depends_batch(pairs, view, variant=FVLVariant.DEFAULT)
    expected_visible = reference.is_visible_batch(all_uids, view)

    path = tmp_path / "serve.fvl"
    _segmented_run(scheme, derivation, path, 5)
    segmented = QueryEngine(scheme)
    segmented.attach(path, run_id=DEFAULT_RUN)
    assert segmented.depends_batch(pairs, view) == expected
    assert segmented.is_visible_batch(all_uids, view) == expected_visible

    assert compact(path).compacted
    compacted = QueryEngine(scheme)
    compacted.attach(path, run_id=DEFAULT_RUN)
    assert compacted.depends_batch(pairs, view) == expected
    assert compacted.is_visible_batch(all_uids, view) == expected_visible


def test_compact_noop_on_single_segment_and_empty(scheme, spec, tmp_path):
    derivation = random_run(spec, 100, seed=13)
    labeler = scheme.label_run(derivation)
    path = tmp_path / "single.fvl"
    checkpoint_run(path, labeler.store, labeler.tree.nodes)
    size = os.path.getsize(path)
    result = compact(path)
    assert not result.compacted
    assert result.generation == 0
    assert os.path.getsize(path) == size


def test_checkpoint_resumes_on_compacted_generation(scheme, spec, tmp_path):
    derivation = random_run(spec, 300, seed=14)
    events = derivation.events
    cut = len(events) // 2
    labeler = RunLabeler(scheme.index)
    for event in events[:cut]:
        labeler(event)
    path = tmp_path / "grow.fvl"
    checkpoint_run(path, labeler.store, labeler.tree.nodes)
    for event in events[cut : cut + cut // 2]:
        labeler(event)
    checkpoint_run(path, labeler.store, labeler.tree.nodes)
    assert compact(path).compacted

    # The compacted file keeps accepting deltas under the same generation.
    for event in events[cut + cut // 2 :]:
        labeler(event)
    delta = checkpoint_run(path, labeler.store, labeler.tree.nodes)
    assert delta.wrote_segment
    info = run_file_info(path)
    assert info.n_segments == 2 and info.generation == 1
    assert info.n_items == derivation.run.n_data_items

    # ...and compacting again bumps the generation once more.
    assert compact(path).generation == 2
    with MappedRunStore(path) as mapped:
        assert mapped.n_items == derivation.run.n_data_items


def test_sparse_runs_compact_losslessly(tmp_path):
    table = PathTable()
    a = table.extend_production(0, 1, 1)
    b = table.extend_production(0, 1, 2)
    store = LabelStore(table)
    store.append(5, a, 1, b, 2)
    store.append(42, b, 1, a, 1)  # gap -> sparse
    path = tmp_path / "sparse.fvl"
    checkpoint_run(path, store, None)
    store.append(77, a, 2, b, 1)
    checkpoint_run(path, store, None)
    assert compact(path).compacted
    with MappedRunStore(path) as mapped:
        assert not mapped.store.is_dense
        assert [int(u) for u in mapped.store.uids()] == [5, 42, 77]
        assert tuple(mapped.store.row(77)) == (a, 2, b, 1)


def test_stale_compaction_temps_are_gcd(scheme, spec, tmp_path):
    derivation = random_run(spec, 150, seed=15)
    path = tmp_path / "gc.fvl"
    _segmented_run(scheme, derivation, path, 3)
    stale = tmp_path / "gc.fvl.compact-g1.tmp"
    stale.write_bytes(b"half-written rewrite from a crashed process")
    # The original file is untouched by the leftover...
    with MappedRunStore(path) as mapped:
        assert mapped.n_segments >= 2
    # ...and the next compaction removes it before rewriting.
    result = compact(path)
    assert result.compacted
    assert str(stale) in result.removed
    assert not stale.exists()
    assert not list(tmp_path.glob("*.tmp"))


def test_failed_verification_leaves_source_untouched(scheme, spec, tmp_path, monkeypatch):
    derivation = random_run(spec, 150, seed=16)
    path = tmp_path / "verify.fvl"
    _segmented_run(scheme, derivation, path, 3)
    original_bytes = path.read_bytes()

    real_merge = compaction_module._merged_sections

    def corrupting_merge(source):
        sections = real_merge(source)
        sid, dtype, row_start, n_rows, payload = sections[0]
        # Flip one byte of the first merged column: the bit-identical
        # verification must catch it before the swap.
        corrupted = bytes([payload[0] ^ 0xFF]) + payload[1:]
        return [(sid, dtype, row_start, n_rows, corrupted)] + sections[1:]

    monkeypatch.setattr(compaction_module, "_merged_sections", corrupting_merge)
    with pytest.raises(SerializationError, match="verification failed"):
        compact(path)
    assert path.read_bytes() == original_bytes
    assert not list(tmp_path.glob("*.tmp"))
