"""Unit tests for the columnar store layer (PathTable + LabelStore)."""

import pytest

from repro.core import FVLScheme, ProductionEdgeLabel, RecursionEdgeLabel
from repro.errors import LabelingError
from repro.store import (
    KIND_PRODUCTION,
    KIND_RECURSION,
    KIND_ROOT,
    NO_PATH,
    ROOT_PATH,
    LabelStore,
    LabelStoreMapping,
    ObjectLabelStore,
    PathTable,
)


# -- PathTable ---------------------------------------------------------------


def test_path_table_interns_paths_once():
    table = PathTable()
    a = table.extend_production(ROOT_PATH, 1, 2)
    b = table.extend_production(ROOT_PATH, 1, 2)
    c = table.extend_recursion(a, 1, 1, 3)
    assert a == b
    assert c != a
    assert len(table) == 3  # root + 2
    assert table.parent(c) == a
    assert table.depth(c) == 2


def test_path_table_materialises_lazily_and_shares():
    table = PathTable()
    a = table.extend_production(ROOT_PATH, 2, 1)
    b = table.extend_recursion(a, 1, 2, 5)
    assert table.path(ROOT_PATH) == ()
    assert table.path(b) == (ProductionEdgeLabel(2, 1), RecursionEdgeLabel(1, 2, 5))
    # The parent's tuple is the prefix of the child's, shared by identity.
    assert table.path(b)[:1] == table.path(a)
    assert table.edge(a) == ProductionEdgeLabel(2, 1)
    assert table.edge(ROOT_PATH) is None
    assert table.edge_fields(a) == (KIND_PRODUCTION, 2, 1, 0)
    assert table.edge_fields(b) == (KIND_RECURSION, 1, 2, 5)
    assert table.edge_fields(ROOT_PATH)[0] == KIND_ROOT


def test_path_table_intern_round_trips_tuples():
    table = PathTable()
    path = (
        ProductionEdgeLabel(1, 3),
        RecursionEdgeLabel(2, 1, 7),
        ProductionEdgeLabel(4, 2),
    )
    pid = table.intern(path)
    assert table.path(pid) == path
    assert table.intern(path) == pid


def test_path_table_compact_drops_and_rebuilds_index():
    table = PathTable()
    a = table.extend_production(ROOT_PATH, 1, 1)
    before = table.memory_bytes()
    table.compact()
    assert table.memory_bytes() < before
    # Interning after compaction still resolves existing paths...
    assert table.extend_production(ROOT_PATH, 1, 1) == a
    # ...and can still grow the trie.
    b = table.extend_production(a, 2, 1)
    assert table.parent(b) == a
    assert table.path(b) == (ProductionEdgeLabel(1, 1), ProductionEdgeLabel(2, 1))


def test_path_table_rejects_bad_ids_and_fields():
    table = PathTable()
    with pytest.raises(LabelingError):
        table.extend_production(99, 1, 1)
    with pytest.raises(LabelingError):
        table.extend_production(ROOT_PATH, 1 << 20, 1)
    with pytest.raises(LabelingError):
        table.extend_recursion(ROOT_PATH, -1, 0, 1)
    with pytest.raises(LabelingError):
        table.path(42)


def test_path_table_iter_edges_matches_contents():
    table = PathTable()
    a = table.extend_production(ROOT_PATH, 3, 1)
    table.extend_recursion(a, 1, 2, 9)
    rows = list(table.iter_edges())
    assert rows == [(ROOT_PATH, KIND_PRODUCTION, 3, 1, 0), (a, KIND_RECURSION, 1, 2, 9)]


# -- LabelStore --------------------------------------------------------------


def _store():
    table = PathTable()
    a = table.extend_production(ROOT_PATH, 1, 1)
    b = table.extend_production(ROOT_PATH, 1, 2)
    return LabelStore(table), a, b


def test_label_store_dense_rows_and_labels():
    store, a, b = _store()
    store.append(10, a, 1, b, 2)
    store.append(11, NO_PATH, 0, a, 1)
    store.append(12, b, 3, NO_PATH, 0)
    assert store.is_dense
    assert len(store) == 3
    assert store.row(10) == (a, 1, b, 2)
    assert list(store.uids()) == [10, 11, 12]
    label = store.label(10)
    assert label.producer.path == store.table.path(a)
    assert label.producer.port == 1
    assert store.label(11).is_initial_input
    assert store.label(12).is_final_output
    with pytest.raises(LabelingError):
        store.row(99)
    with pytest.raises(LabelingError):
        store.append(11, a, 1, b, 1)  # duplicate


def test_label_store_goes_sparse_on_out_of_order_uids():
    store, a, b = _store()
    store.append(5, a, 1, b, 1)
    store.append(42, a, 2, b, 2)  # gap -> sparse mode
    assert not store.is_dense
    assert store.row(5) == (a, 1, b, 1)
    assert store.row(42) == (a, 2, b, 2)
    assert 5 in store and 42 in store and 6 not in store
    with pytest.raises(LabelingError):
        store.append(5, a, 1, b, 1)


def test_label_store_compact_preserves_contents_and_shrinks():
    store, a, b = _store()
    for uid in range(100):
        store.append(uid, a, 1, b, 2)
    before = store.memory_bytes()
    store.compact()
    assert store.is_compacted
    assert store.memory_bytes() < before
    assert store.row(57) == (a, 1, b, 2)
    # Appending after compaction still works (arrays grow in place).
    store.append(100, b, 1, a, 1)
    assert store.row(100) == (b, 1, a, 1)
    columns = store.columns()
    assert len(columns["producer_path_id"]) == 101


def test_labels_view_is_read_only_and_lazy(running_scheme, running_spec):
    from tests.conftest import derive_running

    derivation = derive_running(running_spec, seed=3)
    labeler = running_scheme.label_run(derivation)
    view = labeler.labels
    assert isinstance(view, LabelStoreMapping)
    assert labeler.labels is view  # cached, no per-access copy
    assert len(view) == derivation.run.n_data_items
    assert set(view) == set(derivation.run.data_items)
    uid = next(iter(derivation.run.data_items))
    assert view[uid] == labeler.label(uid)
    with pytest.raises(TypeError):
        view[uid] = None
    with pytest.raises(KeyError):
        view[10**9]


def test_object_store_matches_columnar_semantics():
    table = PathTable()
    a = table.extend_production(ROOT_PATH, 1, 1)
    obj = ObjectLabelStore(table)
    obj.append(1, a, 1, NO_PATH, 0)
    assert obj.label(1).is_final_output
    assert 1 in obj and 2 not in obj
    with pytest.raises(LabelingError):
        obj.append(1, a, 1, NO_PATH, 0)
    with pytest.raises(LabelingError):
        obj.label(2)
    with pytest.raises(TypeError):
        obj.labels_view()[2] = None


def test_engine_shares_one_path_arena_across_runs(running_scheme, running_spec):
    from tests.conftest import derive_running
    from repro.engine import QueryEngine

    engine = QueryEngine(running_scheme)
    labeler_a = engine.add_run("a", derive_running(running_spec, seed=1))
    labeler_b = engine.add_run("b", derive_running(running_spec, seed=2))
    table = labeler_a.store.table
    assert table is labeler_b.store.table
    # Sharing means real interning: identical paths of sibling runs dedupe to
    # one row, so the arena never holds duplicate (parent, edge) rows...
    rows = list(table.rows())
    assert len(rows) == len(set(rows))
    # ...and the bulk codec round-trips an engine-labelled store.
    from repro.io import LabelCodec

    codec = LabelCodec(running_scheme.index)
    payload, bits = codec.encode_run(labeler_b.store)
    restored = codec.decode_run(payload, bits)
    for uid in list(labeler_b.store.uids()):
        assert restored.label(uid) == labeler_b.label(uid)


def test_out_of_range_field_cannot_alias_an_existing_path():
    table = PathTable()
    table.extend_production(ROOT_PATH, 0, 1)
    # 65536 << 1 packs onto the same key as (0, 1); the range check must fire
    # before the memo probe or this would silently return the wrong id.
    with pytest.raises(LabelingError):
        table.extend_production(ROOT_PATH, 1 << 16, 0)
    with pytest.raises(LabelingError):
        table.extend_recursion(ROOT_PATH, 1 << 16, 0, 1)
