"""Tests for measured read amplification (persist.run_file_info / MappedRunStore)."""

from __future__ import annotations

import os

import pytest

from repro.core import FVLScheme
from repro.core.run_labeler import RunLabeler
from repro.errors import SerializationError
from repro.store import FileLease, MappedRunStore, checkpoint_run, compact, run_file_info
from repro.workloads import build_bioaid_specification, random_run


@pytest.fixture(scope="module")
def spec():
    return build_bioaid_specification()


@pytest.fixture(scope="module")
def scheme(spec):
    return FVLScheme(spec)


def _segmented_file(scheme, spec, path, *, slices=8, size=300, seed=61):
    derivation = random_run(spec, size, seed=seed)
    labeler = RunLabeler(scheme.index)
    events = derivation.events
    step = max(1, len(events) // slices)
    for lo in range(0, len(events), step):
        for event in events[lo : lo + step]:
            labeler(event)
        checkpoint_run(path, labeler.store, labeler.tree.nodes)
    return labeler


def test_default_info_carries_no_estimate(scheme, spec, tmp_path):
    path = tmp_path / "plain.fvl"
    _segmented_file(scheme, spec, path, slices=3)
    info = run_file_info(path)
    assert info.compacted_bytes_estimate is None
    assert info.read_amplification is None


def test_segment_chain_amplification_is_measured_and_reclaimed(scheme, spec, tmp_path):
    path = tmp_path / "chain.fvl"
    _segmented_file(scheme, spec, path, slices=8)
    info = run_file_info(path, estimate_amplification=True)
    assert info.n_segments >= 6
    assert info.compacted_bytes_estimate is not None
    assert info.read_amplification > 1.0

    # The mapped store measures the same chain from its parsed extents.
    with MappedRunStore(path) as mapped:
        assert mapped.read_amplification() == pytest.approx(
            info.read_amplification, rel=0.05
        )

    # Compaction reclaims what the estimate promised (within the blob-join
    # slack the estimate deliberately ignores).
    result = compact(path)
    assert result.compacted
    assert result.bytes_after == pytest.approx(info.compacted_bytes_estimate, rel=0.05)

    after = run_file_info(path, estimate_amplification=True)
    assert after.n_segments == 1
    assert after.read_amplification == 1.0
    with MappedRunStore(path) as mapped:
        assert mapped.read_amplification() == 1.0


def test_single_segment_file_has_unit_amplification(scheme, spec, tmp_path):
    path = tmp_path / "single.fvl"
    derivation = random_run(spec, 150, seed=62)
    labeler = RunLabeler(scheme.index)
    for event in derivation.events:
        labeler(event)
    checkpoint_run(path, labeler.store, labeler.tree.nodes)
    info = run_file_info(path, estimate_amplification=True)
    assert info.n_segments == 1
    assert info.read_amplification == 1.0


def test_amplification_scan_rejects_torn_chains(scheme, spec, tmp_path):
    path = tmp_path / "torn.fvl"
    _segmented_file(scheme, spec, path, slices=4)
    info = run_file_info(path)
    with open(path, "r+b") as handle:
        handle.truncate(info.size_bytes // 2)
    # The plain header peek may still succeed (header page is intact), but
    # the chain scan must notice the torn tail instead of estimating garbage.
    with pytest.raises(SerializationError):
        run_file_info(path, estimate_amplification=True)


# -- compact()'s lease argument ------------------------------------------------


def test_compact_rejects_an_unheld_or_foreign_lease(scheme, spec, tmp_path):
    path = tmp_path / "guarded.fvl"
    _segmented_file(scheme, spec, path, slices=3)
    unheld = FileLease(path)
    with pytest.raises(SerializationError, match="not held"):
        compact(path, lease=unheld)
    other = FileLease(tmp_path / "other.fvl").acquire()
    try:
        with pytest.raises(SerializationError, match="guards"):
            compact(path, lease=other)
    finally:
        other.release()
    # A held lease on the right file is accepted and kept (not released).
    lease = FileLease(path).acquire()
    try:
        assert compact(path, lease=lease).compacted
        assert lease.held
    finally:
        lease.release()
    assert os.path.exists(path)
