"""Crash-consistency tests: torn checkpoints and torn compactions.

The writer's ordering contract is *data first, header last, fsync barrier in
between*: after a crash at any point, the header on disk either still
describes the previous watermark (whose segments are fully durable) or the
crash is detectable — attaching must never silently serve partial rows.
These tests forge the on-disk states such crashes leave behind (old header
over new data, truncated tails, half-written compaction temps) and assert
attach serves the previous watermark or fails loudly.
"""

from __future__ import annotations

import pytest

from repro.core import FVLScheme, FVLVariant
from repro.core.run_labeler import RunLabeler
from repro.engine import DEFAULT_RUN, QueryEngine
from repro.errors import SerializationError
from repro.model.projection import ViewProjection
from repro.store import MappedRunStore, checkpoint_run, compact, run_file_info
from repro.store.persist import _HEADER, PAGE_SIZE
from repro.bench import sample_query_pairs
from repro.workloads import build_bioaid_specification, random_run, random_view


@pytest.fixture(scope="module")
def spec():
    return build_bioaid_specification()


@pytest.fixture(scope="module")
def scheme(spec):
    return FVLScheme(spec)


@pytest.fixture()
def torn_setup(scheme, spec, tmp_path):
    """A run checkpointed twice, with the file bytes captured at both states."""
    derivation = random_run(spec, 300, seed=31)
    events = derivation.events
    cut = int(len(events) * 0.7)
    labeler = RunLabeler(scheme.index)
    for event in events[:cut]:
        labeler(event)
    path = tmp_path / "torn.fvl"
    checkpoint_run(path, labeler.store, labeler.tree.nodes)
    after_first = path.read_bytes()
    watermark = run_file_info(path).n_items
    for event in events[cut:]:
        labeler(event)
    checkpoint_run(path, labeler.store, labeler.tree.nodes)
    after_second = path.read_bytes()
    assert len(after_second) > len(after_first)
    return derivation, path, after_first, after_second, watermark


def test_crash_between_segment_append_and_header_write_serves_old_watermark(
    torn_setup, scheme, spec
):
    """Segment 2 data hit the disk, the header did not: previous watermark wins."""
    derivation, path, after_first, after_second, watermark = torn_setup
    torn = after_first[: _HEADER.size] + after_second[_HEADER.size :]
    path.write_bytes(torn)
    with MappedRunStore(path) as mapped:
        assert mapped.n_segments == 1
        assert mapped.n_items == watermark < derivation.run.n_data_items

    # The old watermark is not merely readable — it answers queries.
    view = random_view(spec, 6, seed=3, mode="grey", name="torn-view")
    items = sorted(
        uid
        for uid in ViewProjection(derivation.run, view).visible_items
        if uid <= watermark
    )
    pairs = sample_query_pairs(items, 150, seed=4)
    served = QueryEngine(scheme)
    served.attach(path, run_id=DEFAULT_RUN)
    reference = QueryEngine(scheme)
    reference.add_run(DEFAULT_RUN, derivation)
    assert served.depends_batch(pairs, view, variant=FVLVariant.DEFAULT) == (
        reference.depends_batch(pairs, view, variant=FVLVariant.DEFAULT)
    )


def test_crash_mid_segment_write_serves_old_watermark(torn_setup):
    """A torn half-appended segment under the old header is simply ignored."""
    _, path, after_first, after_second, watermark = torn_setup
    for cut_bytes in (len(after_first) + 100, len(after_second) - 64):
        torn = after_first[: _HEADER.size] + after_second[_HEADER.size : cut_bytes]
        path.write_bytes(torn)
        with MappedRunStore(path) as mapped:
            assert mapped.n_items == watermark


def test_advanced_header_over_truncated_data_fails_loudly(torn_setup):
    """If the fsync ordering were violated (header durable, data lost), attach refuses."""
    _, path, after_first, after_second, _ = torn_setup
    for cut_bytes in (len(after_first) + 100, len(after_second) - 64):
        path.write_bytes(after_second[:cut_bytes])
        with pytest.raises(SerializationError):
            MappedRunStore(path)


def test_truncated_header_page_fails_loudly(torn_setup):
    _, path, _, after_second, _ = torn_setup
    path.write_bytes(after_second[: _HEADER.size - 4])
    with pytest.raises(SerializationError):
        MappedRunStore(path)


def test_freshly_compacted_file_truncation_fails_loudly(scheme, spec, tmp_path):
    """A compacted (single-segment) file is held to the same standard."""
    derivation = random_run(spec, 250, seed=32)
    events = derivation.events
    labeler = RunLabeler(scheme.index)
    path = tmp_path / "compacted.fvl"
    step = max(1, len(events) // 4)
    for lo in range(0, len(events), step):
        for event in events[lo : lo + step]:
            labeler(event)
        checkpoint_run(path, labeler.store, labeler.tree.nodes)
    assert compact(path).compacted
    whole = path.read_bytes()

    # Intact: serves the full watermark.
    with MappedRunStore(path) as mapped:
        assert mapped.n_items == derivation.run.n_data_items
    # Truncated mid-column (and mid-section-table): loud failures, never
    # partial answers.
    for cut_bytes in (len(whole) - 128, 2 * PAGE_SIZE + 16, PAGE_SIZE + 8):
        path.write_bytes(whole[:cut_bytes])
        with pytest.raises(SerializationError):
            MappedRunStore(path)


def test_crashed_compaction_temp_never_shadows_the_source(scheme, spec, tmp_path):
    """A crash *during* compaction leaves the original path fully intact."""
    derivation = random_run(spec, 200, seed=33)
    labeler = RunLabeler(scheme.index)
    path = tmp_path / "swap.fvl"
    events = derivation.events
    half = len(events) // 2
    for event in events[:half]:
        labeler(event)
    checkpoint_run(path, labeler.store, labeler.tree.nodes)
    for event in events[half:]:
        labeler(event)
    checkpoint_run(path, labeler.store, labeler.tree.nodes)
    original = path.read_bytes()

    # Simulate the crash window: the rewrite temp exists (half-written),
    # os.replace never ran.  Attach ignores it entirely.
    stale = tmp_path / "swap.fvl.compact-g1.tmp"
    stale.write_bytes(original[: len(original) // 2])
    with MappedRunStore(path) as mapped:
        assert mapped.n_items == derivation.run.n_data_items
        assert mapped.generation == 0
    # Recovery path: the next compact() GCs the temp and completes the swap.
    result = compact(path)
    assert result.compacted and str(stale) in result.removed
    assert run_file_info(path).generation == 1
    with MappedRunStore(path) as mapped:
        assert mapped.n_items == derivation.run.n_data_items
