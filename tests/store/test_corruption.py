"""Corruption detection: per-section CRCs, verify modes, quarantine surfaces.

The contract under test is the loud-failure guarantee: a bit flip in any
payload section of a v3 run file raises a typed
:class:`~repro.errors.CorruptionError` at attach (``verify="attach"``) or on
the first row access (``verify="lazy"``) — never a silently wrong answer —
while readers already mapped keep serving their last good generation.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import FVLScheme
from repro.core.run_labeler import RunLabeler
from repro.engine import DEFAULT_RUN, QueryEngine
from repro.errors import CorruptionError, SerializationError
from repro.model.projection import ViewProjection
from repro.store import (
    MappedRunStore,
    checkpoint_run,
    compact,
    verify_run,
)
from repro.store.persist import _SECTION_NAMES
from repro.bench import sample_query_pairs
from repro.workloads import build_bioaid_specification, random_run, random_view


@pytest.fixture(scope="module")
def spec():
    return build_bioaid_specification()


@pytest.fixture(scope="module")
def scheme(spec):
    return FVLScheme(spec)


@pytest.fixture()
def labelled(scheme, spec):
    derivation = random_run(spec, 300, seed=77)
    labeler = scheme.label_run(derivation)
    return derivation, labeler


def _payload_extents(path):
    """Every non-empty ``(section_name, offset, nbytes, crc)`` in the file."""
    with MappedRunStore(path, verify="off") as mapped:
        out = []
        for sid, parts in sorted(mapped._extents.items()):
            for part in parts:
                if part.nbytes:
                    name = _SECTION_NAMES.get(sid, f"section#{sid}")
                    out.append((name, part.offset, part.nbytes, part.crc))
        return out


def _flip_byte(path, offset: int) -> int:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        original = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([original ^ 0xFF]))
    return original


def _restore_byte(path, offset: int, original: int) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        handle.write(bytes([original]))


def _bump_generation(path) -> None:
    """Fake a compaction swap so reopen probes actually attempt the remap."""
    from repro.store.persist import _HEADER

    with open(path, "r+b") as handle:
        fields = list(_HEADER.unpack(handle.read(_HEADER.size)))
        fields[-1] += 1  # generation is the last header word
        handle.seek(0)
        handle.write(_HEADER.pack(*fields))


# -- the format carries checksums ----------------------------------------------


def test_v3_checkpoints_are_fully_checksummed(labelled, tmp_path):
    _, labeler = labelled
    run_file = tmp_path / "run.fvl"
    checkpoint_run(run_file, labeler.store, labeler.tree.nodes)
    report = verify_run(run_file)
    assert report.fully_checksummed
    assert report.extents_checked > 0
    assert report.bytes_verified > 0
    shallow = verify_run(run_file, deep=False)
    assert shallow.extents_checked == 0 and shallow.fully_checksummed


def test_checksums_false_writes_legacy_segments(labelled, tmp_path):
    """The v2 wire shape is still writable and still opens read-only."""
    _, labeler = labelled
    run_file = tmp_path / "legacy.fvl"
    checkpoint_run(run_file, labeler.store, labeler.tree.nodes, checksums=False)
    report = verify_run(run_file)  # unchecksummed extents are reported, not failed
    assert not report.fully_checksummed
    assert report.extents_checked == 0
    with MappedRunStore(run_file, verify="attach") as mapped:
        assert mapped.n_items == len(labeler.store)


def test_compaction_upgrades_legacy_files_to_checksummed(scheme, spec, tmp_path):
    derivation = random_run(spec, 200, seed=78)
    run_file = tmp_path / "upgrade.fvl"
    half = len(derivation.events) // 2
    # Two checksum-less segments, then one compaction pass.
    streaming = RunLabeler(scheme.index)
    for event in derivation.events[:half]:
        streaming(event)
    checkpoint_run(run_file, streaming.store, streaming.tree.nodes, checksums=False)
    for event in derivation.events[half:]:
        streaming(event)
    checkpoint_run(run_file, streaming.store, streaming.tree.nodes, checksums=False)
    assert not verify_run(run_file).fully_checksummed
    result = compact(run_file)
    assert result.compacted
    report = verify_run(run_file)
    assert report.fully_checksummed and report.extents_checked > 0


# -- bit flips are detected, loudly --------------------------------------------


def test_bit_flip_in_every_payload_section_fails_attach(labelled, tmp_path):
    _, labeler = labelled
    run_file = tmp_path / "run.fvl"
    checkpoint_run(run_file, labeler.store, labeler.tree.nodes)
    extents = _payload_extents(run_file)
    assert extents and all(crc is not None for _, _, _, crc in extents)
    for name, offset, nbytes, _crc in extents:
        flip_at = offset + nbytes // 2
        original = _flip_byte(run_file, flip_at)
        with pytest.raises(CorruptionError, match="fails its checksum"):
            MappedRunStore(run_file, verify="attach")
        with pytest.raises(CorruptionError):
            verify_run(run_file)
        _restore_byte(run_file, flip_at, original)
    verify_run(run_file)  # restored bytes scrub clean again


def test_lazy_verification_raises_on_first_gather(labelled, tmp_path):
    _, labeler = labelled
    run_file = tmp_path / "run.fvl"
    checkpoint_run(run_file, labeler.store, labeler.tree.nodes)
    name, offset, nbytes, _crc = max(_payload_extents(run_file), key=lambda e: e[2])
    _flip_byte(run_file, offset + nbytes // 2)
    mapped = MappedRunStore(run_file)  # lazy: attach itself stays cheap
    try:
        rows = np.arange(min(4, mapped.n_items), dtype=np.int64)
        with pytest.raises(CorruptionError):
            mapped.store.gather_rows(rows)
        # The scrub does not "succeed" on retry: corruption keeps raising.
        with pytest.raises(CorruptionError):
            mapped.store.gather_rows(rows)
    finally:
        mapped.close()


def test_verify_off_is_an_explicit_escape_hatch(labelled, tmp_path):
    _, labeler = labelled
    run_file = tmp_path / "run.fvl"
    checkpoint_run(run_file, labeler.store, labeler.tree.nodes)
    name, offset, nbytes, _crc = max(_payload_extents(run_file), key=lambda e: e[2])
    _flip_byte(run_file, offset + nbytes // 2)
    with MappedRunStore(run_file, verify="off") as mapped:
        mapped.store.gather_rows(np.arange(min(4, mapped.n_items), dtype=np.int64))


def test_verify_mode_is_validated(labelled, tmp_path):
    _, labeler = labelled
    run_file = tmp_path / "run.fvl"
    checkpoint_run(run_file, labeler.store, labeler.tree.nodes)
    with pytest.raises(ValueError, match="verify"):
        MappedRunStore(run_file, verify="sometimes")


# -- the engine keeps serving the last good generation -------------------------


def test_engine_serves_last_good_generation_after_on_disk_corruption(
    scheme, spec, tmp_path
):
    derivation = random_run(spec, 250, seed=79)
    view = random_view(spec, 6, seed=80, mode="grey", name="corrupt-view")
    items = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(items, 150, seed=81)
    reference = QueryEngine(scheme)
    reference.add_run(DEFAULT_RUN, derivation)
    expected = reference.depends_batch(pairs, view)
    run_file = tmp_path / "serving.fvl"
    reference.checkpoint(run_file)

    engine = QueryEngine(scheme)
    engine.attach(run_file, verify="attach")
    engine.add_view(view)
    assert engine.depends_batch(pairs, view) == expected

    # A corrupt *rewrite* is swapped over the path (a compaction whose
    # output a bad disk mangled): a new inode, so the engine's live mapping
    # of the old generation is untouched.
    name, offset, nbytes, _crc = max(_payload_extents(run_file), key=lambda e: e[2])
    rewrite = tmp_path / "serving.fvl.rewrite"
    rewrite.write_bytes(run_file.read_bytes())
    _bump_generation(rewrite)
    _flip_byte(rewrite, offset + nbytes // 2)
    os.replace(rewrite, run_file)

    # A remap attempt fails loudly with the typed error...
    with pytest.raises(CorruptionError):
        engine.reopen(DEFAULT_RUN)
    # ...and the mapped last-good generation keeps answering bit-identically.
    assert engine.depends_batch(pairs, view) == expected


def test_maybe_reopen_stays_loud_on_corruption(scheme, spec, tmp_path):
    derivation = random_run(spec, 150, seed=82)
    reference = QueryEngine(scheme)
    reference.add_run(DEFAULT_RUN, derivation)
    run_file = tmp_path / "maybe.fvl"
    reference.checkpoint(run_file)
    engine = QueryEngine(scheme)
    engine.attach(run_file, verify="attach")

    # Fake a newer generation so maybe_reopen actually attempts the remap,
    # then corrupt a payload byte: the remap must raise, not return False.
    _bump_generation(run_file)
    name, offset, nbytes, _crc = max(_payload_extents(run_file), key=lambda e: e[2])
    _flip_byte(run_file, offset + nbytes // 2)
    with pytest.raises(CorruptionError):
        engine.maybe_reopen(DEFAULT_RUN)
