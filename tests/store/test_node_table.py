"""Unit tests for the columnar node arena and the ParseNode flyweight."""

import pytest

from repro.core import CompressedParseTree, GrammarIndex, ParseNode
from repro.errors import LabelingError
from repro.model import Derivation
from repro.store import (
    NO_NODE,
    NODE_MODULE,
    NODE_RECURSIVE,
    ROOT_PATH,
    NodeTable,
    PathTable,
)


# -- NodeTable ---------------------------------------------------------------


def _table_with_rows():
    paths = PathTable()
    nodes = NodeTable()
    mid_s = nodes.module_id("S")
    mid_a = nodes.module_id("A")
    root = nodes.append_module(NO_NODE, ROOT_PATH, mid_s, "S:1")
    p1 = paths.extend_production(ROOT_PATH, 1, 1)
    rec = nodes.append_recursive(root, p1, 2, 1)
    p2 = paths.extend_recursion(p1, 2, 1, 1)
    child = nodes.append_module(rec, p2, mid_a, "A:1")
    return paths, nodes, (root, rec, child)


def test_node_table_rows_and_accessors():
    paths, nodes, (root, rec, child) = _table_with_rows()
    assert len(nodes) == nodes.n_nodes == 3
    assert nodes.parent_row(root) == NO_NODE
    assert nodes.parent_row(child) == rec
    assert nodes.kind(root) == NODE_MODULE
    assert nodes.kind(rec) == NODE_RECURSIVE
    assert nodes.is_module(child) and not nodes.is_recursive(child)
    assert nodes.module_name(root) == "S"
    assert nodes.module_name(rec) is None
    assert nodes.uid(child) == "A:1"
    assert nodes.uid(rec) is None
    assert nodes.cycle(rec) == 2 and nodes.rotation(rec) == 1
    assert nodes.cycle(child) is None and nodes.rotation(child) is None
    assert nodes.path_id(child) == 2
    assert list(nodes.module_rows()) == [root, child]
    assert nodes.n_uids == 2


def test_node_table_child_counts_and_children():
    _, nodes, (root, rec, child) = _table_with_rows()
    assert nodes.child_count(root) == 1
    assert nodes.child_count(rec) == 1
    assert nodes.child_count(child) == 0
    assert nodes.max_fanout() == 1
    assert nodes.children_rows(root) == [rec]
    assert nodes.children_rows(child) == []


def test_node_table_module_interning_is_idempotent():
    nodes = NodeTable()
    a = nodes.module_id("A")
    assert nodes.module_id("A") == a
    assert nodes.module_id("B") == a + 1
    assert nodes.module_names == ["A", "B"]


def test_node_table_rejects_bad_rows():
    nodes = NodeTable()
    mid = nodes.module_id("S")
    with pytest.raises(LabelingError):
        nodes.append_module(5, ROOT_PATH, mid, "S:1")  # unknown parent
    with pytest.raises(LabelingError):
        nodes.append_module(NO_NODE, ROOT_PATH, 99, "S:1")  # unknown module id
    with pytest.raises(LabelingError):
        nodes.append_recursive(NO_NODE, ROOT_PATH, 1 << 16, 0)  # field overflow
    nodes.append_module(NO_NODE, ROOT_PATH, mid, "S:1")
    with pytest.raises(LabelingError):
        nodes.parent_row(42)


def test_node_table_compact_preserves_contents():
    _, nodes, (root, rec, child) = _table_with_rows()
    before = nodes.memory_bytes()
    nodes.compact()
    assert nodes.is_compacted
    assert nodes.memory_bytes() < before
    assert nodes.uid(child) == "A:1"
    assert nodes.child_count(root) == 1
    # Growth after compaction still works (arrays grow in place).
    mid = nodes.module_id("B")
    extra = nodes.append_module(child, 2, mid, "B:1")
    assert nodes.parent_row(extra) == child
    assert nodes.child_count(child) == 1
    columns = nodes.columns()
    assert len(columns["parent"]) == 4
    assert list(columns["uid_id"]) == [0, -1, 1, 2]


def test_node_table_rows_iteration_matches_columns():
    _, nodes, _ = _table_with_rows()
    rows = list(nodes.rows())
    assert len(rows) == 3
    parents = [parent for parent, _, _, _ in rows]
    assert parents == [NO_NODE, 0, 1]


# -- the flyweight over a columnar tree --------------------------------------


@pytest.fixture()
def running_tree(running_spec):
    index = GrammarIndex(running_spec.grammar)
    tree = CompressedParseTree(index)
    derivation = Derivation(running_spec)
    tree.start_event("S:1")
    for uid, k in [("S:1", 1), ("A:1", 2), ("B:1", 4), ("A:2", 2)]:
        event = derivation.expand(uid, k)
        tree.expand_event(uid, k, event.children)
    return tree


def test_flyweights_are_cached_and_identity_stable(running_tree):
    node = running_tree.node_for("A:1")
    assert isinstance(node, ParseNode)
    assert running_tree.node_for("A:1") is node
    assert node.parent is running_tree.node_for("B:1").parent
    assert node in node.parent.children


def test_flyweight_attributes_derive_from_columns(running_tree):
    node = running_tree.node_for("B:1")
    assert node.kind == "module"
    assert node.module_name == "B"
    assert node.instance_uid == "B:1"
    recursive = node.parent
    assert recursive.is_recursive
    assert recursive.kind == "recursive"
    assert recursive.instance_uid is None
    assert recursive.cycle is not None
    assert node.depth == len(node.path)
    assert node.edge_from_parent == node.path[-1]
    assert running_tree.root is not None
    assert running_tree.root.parent is None


def test_tree_summaries_match_flyweight_walk(running_tree):
    # depth()/max_fanout() are computed from the columns; cross-check against
    # the flyweight API.
    nodes = running_tree.nodes
    by_walk = max(
        running_tree.node_for(nodes.uid(row)).depth for row in nodes.module_rows()
    )
    assert running_tree.depth() == by_walk
    fanouts = []

    def walk(node):
        fanouts.append(len(node.children))
        for child in node.children:
            walk(child)

    walk(running_tree.root)
    assert running_tree.max_fanout() == max(fanouts)
    assert running_tree.n_nodes == len(running_tree.nodes)
