"""Allocation-count guard: per-item label objects must not silently return.

The columnar ingest path exists to kill the seed's per-item object churn:
labeling a run must construct **zero** ``PortLabel``/``DataLabel``/edge-label
value objects (they are lazy, materialised only for items a caller reads).
Like ``tests/engine/test_perf_guard.py``, the guard counts constructor calls
instead of timing anything, so it cannot flake — if someone reintroduces
per-item object construction on the ingest path, the count goes from zero to
O(n) and the assertion names the regression precisely.
"""

from __future__ import annotations

import pytest

from repro.core import FVLScheme
from repro.core.labels import (
    DataLabel,
    PortLabel,
    ProductionEdgeLabel,
    RecursionEdgeLabel,
)
from repro.store import LabelStore
from repro.workloads import build_bioaid_specification, random_run


@pytest.fixture(scope="module")
def prepared():
    spec = build_bioaid_specification()
    scheme = FVLScheme(spec)
    derivation = random_run(spec, 400, seed=5)
    return scheme, derivation


def _counting(monkeypatch, cls, counts):
    original = cls.__init__

    def counted(self, *args, **kwargs):
        counts[cls.__name__] += 1
        original(self, *args, **kwargs)

    monkeypatch.setattr(cls, "__init__", counted)


def test_columnar_labeling_constructs_no_label_objects(prepared, monkeypatch):
    scheme, derivation = prepared
    counts = {
        "PortLabel": 0,
        "DataLabel": 0,
        "ProductionEdgeLabel": 0,
        "RecursionEdgeLabel": 0,
    }
    for cls in (PortLabel, DataLabel, ProductionEdgeLabel, RecursionEdgeLabel):
        _counting(monkeypatch, cls, counts)

    labeler = scheme.label_run(derivation)

    assert isinstance(labeler.store, LabelStore)
    assert len(labeler) == derivation.run.n_data_items
    assert counts == {
        "PortLabel": 0,
        "DataLabel": 0,
        "ProductionEdgeLabel": 0,
        "RecursionEdgeLabel": 0,
    }, f"ingest constructed label value objects: {counts}"

    # Materialisation is lazy and bounded: reading one label builds exactly
    # its own objects (two ports, one label, the edges of its two paths).
    uid = next(iter(derivation.run.data_items))
    label = labeler.label(uid)
    assert counts["DataLabel"] == 1
    assert counts["PortLabel"] == len(label.paths())


def test_object_representation_still_constructs_objects(prepared, monkeypatch):
    """The guard's counter actually observes the object path (sanity check)."""
    scheme, derivation = prepared
    counts = {"PortLabel": 0, "DataLabel": 0}
    for cls in (PortLabel, DataLabel):
        _counting(monkeypatch, cls, counts)
    scheme.label_run(derivation, columnar=False)
    assert counts["DataLabel"] == derivation.run.n_data_items


def test_labels_property_returns_cached_view_not_copy(prepared):
    scheme, derivation = prepared
    labeler = scheme.label_run(derivation)
    assert labeler.labels is labeler.labels
    assert not isinstance(labeler.labels, dict)
