"""Allocation-count guard: per-item/per-node objects must not silently return.

The columnar ingest path exists to kill the seed's per-item object churn:
labeling a run must construct **zero** ``PortLabel``/``DataLabel``/edge-label
value objects *and* — since the node arena — zero ``ParseNode`` objects and
zero path tuples (all of them are lazy, materialised only for what a caller
reads).  Like ``tests/engine/test_perf_guard.py``, the guard counts
constructor calls instead of timing anything, so it cannot flake — if someone
reintroduces per-item or per-node construction on the ingest path, the count
goes from zero to O(n) and the assertion names the regression precisely.
"""

from __future__ import annotations

import pytest

from repro.core import FVLScheme, ObjectParseNode, ParseNode
from repro.core.labels import (
    DataLabel,
    PortLabel,
    ProductionEdgeLabel,
    RecursionEdgeLabel,
)
from repro.store import LabelStore, NodeTable
from repro.workloads import build_bioaid_specification, random_run


@pytest.fixture(scope="module")
def prepared():
    spec = build_bioaid_specification()
    scheme = FVLScheme(spec)
    derivation = random_run(spec, 400, seed=5)
    return scheme, derivation


def _counting(monkeypatch, cls, counts):
    original = cls.__init__

    def counted(self, *args, **kwargs):
        counts[cls.__name__] += 1
        original(self, *args, **kwargs)

    monkeypatch.setattr(cls, "__init__", counted)


def test_columnar_labeling_constructs_no_label_objects(prepared, monkeypatch):
    scheme, derivation = prepared
    counts = {
        "PortLabel": 0,
        "DataLabel": 0,
        "ProductionEdgeLabel": 0,
        "RecursionEdgeLabel": 0,
    }
    for cls in (PortLabel, DataLabel, ProductionEdgeLabel, RecursionEdgeLabel):
        _counting(monkeypatch, cls, counts)

    labeler = scheme.label_run(derivation)

    assert isinstance(labeler.store, LabelStore)
    assert len(labeler) == derivation.run.n_data_items
    assert counts == {
        "PortLabel": 0,
        "DataLabel": 0,
        "ProductionEdgeLabel": 0,
        "RecursionEdgeLabel": 0,
    }, f"ingest constructed label value objects: {counts}"

    # Materialisation is lazy and bounded: reading one label builds exactly
    # its own objects (two ports, one label, the edges of its two paths).
    uid = next(iter(derivation.run.data_items))
    label = labeler.label(uid)
    assert counts["DataLabel"] == 1
    assert counts["PortLabel"] == len(label.paths())


def test_columnar_ingest_constructs_no_parse_nodes_or_path_tuples(prepared, monkeypatch):
    """Tree construction is pure column appends: no flyweights, no tuples."""
    scheme, derivation = prepared
    counts = {"ParseNode": 0}
    _counting(monkeypatch, ParseNode, counts)

    labeler = scheme.label_run(derivation)

    tree = labeler.tree
    assert isinstance(tree.nodes, NodeTable)
    assert tree.n_nodes >= len(derivation.run.instances)
    assert counts["ParseNode"] == 0, (
        f"ingest constructed {counts['ParseNode']} ParseNode flyweights"
    )
    # No path tuple was materialised either: the arena memo still holds only
    # the root path.
    assert len(tree.path_table._tuples) == 1

    # Touching one instance materialises exactly its own chain of flyweights
    # (the node plus the ancestors the walk touches), nothing run-sized.
    uid = next(iter(derivation.run.instances))
    node = tree.node_for(uid)
    assert tree.node_for(uid) is node
    assert 1 <= counts["ParseNode"] <= node.depth + 2


def test_object_representation_still_constructs_objects(prepared, monkeypatch):
    """The guard's counter actually observes the object path (sanity check)."""
    scheme, derivation = prepared
    counts = {"PortLabel": 0, "DataLabel": 0, "ObjectParseNode": 0}
    for cls in (PortLabel, DataLabel, ObjectParseNode):
        _counting(monkeypatch, cls, counts)
    labeler = scheme.label_run(derivation, columnar=False)
    assert counts["DataLabel"] == derivation.run.n_data_items
    assert counts["ObjectParseNode"] == labeler.tree.n_nodes


def test_labels_property_returns_cached_view_not_copy(prepared):
    scheme, derivation = prepared
    labeler = scheme.label_run(derivation)
    assert labeler.labels is labeler.labels
    assert not isinstance(labeler.labels, dict)
