"""Unit tests for the cross-process writer lease (store/lockfile.py)."""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import textwrap
import time

import pytest

from repro.errors import SerializationError
from repro.store import FileLease, LeaseHeldError, LeaseInfo
from repro.store.lockfile import _lease_payload


def _write_foreign_claim(lock_path, *, pid, ts, host=None):
    payload = {"pid": pid, "host": host or socket.gethostname(), "ts": ts}
    with open(lock_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


# -- basics (flock mode) -------------------------------------------------------


def test_acquire_release_reacquire(tmp_path):
    target = tmp_path / "run.fvl"
    lease = FileLease(target)
    assert not lease.held
    assert lease.try_acquire()
    assert lease.held
    assert os.path.exists(lease.lock_path)
    owner = lease.owner()
    assert owner is not None and owner.pid == os.getpid()
    lease.release()
    assert not lease.held
    # The lock file stays (flock contract) but the lease is re-acquirable.
    with FileLease(target) as again:
        assert again.held


def test_same_process_leases_are_shared(tmp_path):
    target = tmp_path / "run.fvl"
    first = FileLease(target).acquire()
    second = FileLease(target)
    # flock would self-conflict across fds; the process registry shares it.
    assert second.try_acquire()
    second.release()
    assert first.held  # still held through the remaining reference
    first.release()


def test_double_acquire_same_instance_rejected(tmp_path):
    lease = FileLease(tmp_path / "run.fvl").acquire()
    with pytest.raises(SerializationError, match="already held"):
        lease.try_acquire()
    lease.release()


def test_acquire_fails_loudly_across_processes(tmp_path):
    """A real second process cannot take a flock-held lease (and sees who has it)."""
    target = tmp_path / "run.fvl"
    lease = FileLease(target).acquire()
    try:
        script = textwrap.dedent(
            f"""
            import sys
            sys.path.insert(0, {os.path.join(os.path.dirname(__file__), "..", "..", "src")!r})
            from repro.store import FileLease, LeaseHeldError
            probe = FileLease({os.fspath(target)!r})
            try:
                probe.acquire()
            except LeaseHeldError as exc:
                assert str({os.getpid()!r}) in str(exc), exc
                sys.exit(0)
            sys.exit(1)
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, timeout=60
        )
        assert proc.returncode == 0, proc.stderr
    finally:
        lease.release()


def test_stale_after_validation(tmp_path):
    with pytest.raises(ValueError):
        FileLease(tmp_path / "run.fvl", stale_after=0.0)


# -- the O_EXCL fallback (heartbeat + takeover) --------------------------------


def test_excl_mode_conflicts_with_live_foreign_holder(tmp_path):
    target = tmp_path / "run.fvl"
    lease = FileLease(target, use_flock=False, stale_after=30.0)
    # A "foreign" claim by a live pid (our own) with a fresh heartbeat.
    _write_foreign_claim(lease.lock_path, pid=os.getpid(), ts=time.time())
    assert not lease.try_acquire()
    with pytest.raises(LeaseHeldError, match="writer lease"):
        lease.acquire()


def test_excl_mode_takes_over_dead_pid(tmp_path):
    target = tmp_path / "run.fvl"
    lease = FileLease(target, use_flock=False, stale_after=3600.0)
    # Fresh heartbeat, but the recorded local pid is dead: takeover.
    dead = subprocess.Popen([sys.executable, "-c", "pass"])
    dead.wait()
    _write_foreign_claim(lease.lock_path, pid=dead.pid, ts=time.time())
    assert lease.try_acquire()
    assert lease.owner().pid == os.getpid()
    lease.release()
    assert not os.path.exists(lease.lock_path)  # excl release unlinks


def test_excl_mode_takes_over_stale_heartbeat(tmp_path):
    target = tmp_path / "run.fvl"
    lease = FileLease(target, use_flock=False, stale_after=0.5)
    # A live pid on another "host": only the heartbeat age can decide.
    _write_foreign_claim(
        lease.lock_path, pid=os.getpid(), ts=time.time() - 60.0, host="elsewhere"
    )
    assert lease.try_acquire()
    lease.release()


def test_excl_mode_heartbeat_keeps_the_lease_fresh(tmp_path):
    target = tmp_path / "run.fvl"
    holder = FileLease(target, use_flock=False, stale_after=0.2).acquire()
    time.sleep(0.3)
    holder.heartbeat()  # refresh after the stale bound elapsed
    contender = FileLease(target, use_flock=False, stale_after=0.2)
    # Registry sharing would mask the heartbeat test; simulate the contender
    # being another process by checking the on-disk staleness logic directly.
    info = contender.owner()
    assert info is not None and not info.is_stale(0.2)
    holder.release()


def test_excl_release_leaves_a_takeover_claim_alone(tmp_path):
    target = tmp_path / "run.fvl"
    holder = FileLease(target, use_flock=False, stale_after=3600.0).acquire()
    # Another process took the lease over (stale holder scenario) and wrote
    # its own claim; our late release must not unlink it.
    _write_foreign_claim(holder.lock_path, pid=os.getpid() + 1, ts=time.time())
    holder.release()
    assert os.path.exists(holder.lock_path)


def test_heartbeat_refuses_to_clobber_a_takeover(tmp_path):
    """A resumed holder whose lease was legitimately taken must not overwrite it."""
    holder = FileLease(tmp_path / "run.fvl", use_flock=False, stale_after=0.2).acquire()
    time.sleep(0.3)  # past both the write throttle and the stale bound
    _write_foreign_claim(holder.lock_path, pid=os.getpid() + 1, ts=time.time())
    with pytest.raises(LeaseHeldError, match="taken over"):
        holder.heartbeat()
    holder.release()  # the contender's claim survives our late release too
    assert os.path.exists(holder.lock_path)


def test_heartbeat_requires_held_lease(tmp_path):
    lease = FileLease(tmp_path / "run.fvl", use_flock=False)
    with pytest.raises(SerializationError, match="not held"):
        lease.heartbeat()


def test_lease_info_staleness_rules():
    live = LeaseInfo(pid=os.getpid(), host=socket.gethostname(), heartbeat=time.time())
    assert not live.is_stale(30.0)
    old = LeaseInfo(pid=os.getpid(), host="elsewhere", heartbeat=time.time() - 120.0)
    assert old.is_stale(30.0)
    assert not old.is_stale(3600.0)


def test_payload_round_trip(tmp_path):
    raw = _lease_payload()
    data = json.loads(raw)
    assert data["pid"] == os.getpid()
    assert data["host"] == socket.gethostname()


# -- mixed-mode registry joins -------------------------------------------------


def test_mixed_mode_join_rejected(tmp_path):
    """An excl-mode lease cannot silently join a flock-mode core (or back)."""
    target = tmp_path / "run.fvl"
    with FileLease(target, use_flock=True) as holder:
        assert holder.held
        impostor = FileLease(target, use_flock=False)
        with pytest.raises(SerializationError, match="one locking mode"):
            impostor.try_acquire()
        assert not impostor.held
    # The refused join must not have corrupted the refcount: the lease
    # released cleanly and the path is acquirable again in its own mode.
    with FileLease(target, use_flock=True) as again:
        assert again.held
    # And the reverse direction on a fresh path: flock refused onto excl.
    other = tmp_path / "other.fvl"
    with FileLease(other, use_flock=False) as fresh:
        assert fresh.held
        flocked = FileLease(other, use_flock=True)
        with pytest.raises(SerializationError, match="in flock mode.*excl mode"):
            flocked.try_acquire()


def test_same_mode_join_still_shares_the_core(tmp_path):
    target = tmp_path / "run.fvl"
    with FileLease(target, use_flock=False) as first:
        second = FileLease(target, use_flock=False)
        assert second.try_acquire()  # same mode: refcounted join as before
        second.release()
