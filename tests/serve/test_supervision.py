"""Worker supervision in the ProvenanceServer: dead workers restart loudly."""

from __future__ import annotations

import time

import pytest

from repro.core import FVLScheme, FVLVariant
from repro.engine import DEFAULT_RUN, QueryEngine
from repro.faults import FaultPlan, InjectedFault
from repro.model.projection import ViewProjection
from repro.serve import ProvenanceServer
from repro.bench import sample_query_pairs
from repro.workloads import build_bioaid_specification, random_run, random_view


@pytest.fixture(scope="module")
def spec():
    return build_bioaid_specification()


@pytest.fixture(scope="module")
def scheme(spec):
    return FVLScheme(spec)


@pytest.fixture(scope="module")
def workload(spec):
    derivation = random_run(spec, 200, seed=61)
    view = random_view(spec, 6, seed=62, mode="grey", name="supervise-view")
    items = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(items, 100, seed=63)
    return derivation, view, items, pairs


@pytest.fixture()
def served(scheme, workload, tmp_path):
    derivation, view, items, pairs = workload
    reference = QueryEngine(scheme)
    reference.add_run(DEFAULT_RUN, derivation)
    expected = reference.depends_batch(pairs, view, variant=FVLVariant.DEFAULT)
    run_file = tmp_path / "supervise.fvl"
    reference.checkpoint(run_file)
    engine = QueryEngine(scheme)
    server = ProvenanceServer(engine)
    server.attach(run_file)
    return server, view, pairs, expected


def _wait_for(predicate, timeout_s: float = 5.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.01)


def test_worker_death_fails_its_batch_and_restarts(served):
    server, view, pairs, expected = served
    plan = FaultPlan().on("scheduler.batch", count=1)
    with server:
        with plan.armed():
            future = server.submit(*pairs[0], view)
            # The injected death lands between collect and process: the
            # batch's future fails loudly instead of hanging forever.
            with pytest.raises(InjectedFault):
                future.result(timeout=5.0)
            _wait_for(lambda: server.stats.worker_restarts == 1)
            assert isinstance(server.last_error, InjectedFault)
            # The restarted worker keeps serving the same answers.
            assert server.depends(*pairs[0], view) == expected[0]
        assert server.stats.worker_restarts == 1


def test_repeated_worker_deaths_restart_each_time(served):
    server, view, pairs, expected = served
    plan = FaultPlan().on("scheduler.batch", count=3)
    with server:
        with plan.armed():
            for _ in range(3):
                with pytest.raises(InjectedFault):
                    server.submit(*pairs[1], view).result(timeout=5.0)
            _wait_for(lambda: server.stats.worker_restarts == 3)
            assert server.depends(*pairs[1], view) == expected[1]
    assert server.stats.worker_restarts == 3


def test_inline_drain_does_not_cross_the_fault_point(served):
    """drain_once() is the threadless scheduler: no worker, no scheduler.batch."""
    server, view, pairs, expected = served
    plan = FaultPlan().on("scheduler.batch", count=None)
    with plan.armed():
        assert server.depends(*pairs[2], view) == expected[2]
    assert plan.hits("scheduler.batch") == 0


def test_workers_exit_cleanly_while_armed(served):
    """A stopping server under a standing fault drains and joins, no hang."""
    server, view, pairs, expected = served
    plan = FaultPlan().on("scheduler.batch", count=None)
    with plan.armed():
        server.start()
        future = server.submit(*pairs[3], view)
        with pytest.raises(InjectedFault):
            future.result(timeout=5.0)
        server.stop()  # must join: the supervisor respects stopping
    assert not server.running
    assert server.stats.worker_restarts >= 1
