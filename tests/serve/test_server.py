"""Tests for the query-coalescing ProvenanceServer (serve/server.py)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import FVLScheme, FVLVariant
from repro.engine import DEFAULT_RUN, QueryEngine
from repro.errors import LabelingError, ViewError
from repro.model.projection import ViewProjection
from repro.serve import BatchPolicy, ProvenanceServer, ReopenPolicy
from repro.bench import sample_query_pairs
from repro.workloads import build_bioaid_specification, random_run, random_view


@pytest.fixture(scope="module")
def spec():
    return build_bioaid_specification()


@pytest.fixture(scope="module")
def scheme(spec):
    return FVLScheme(spec)


@pytest.fixture(scope="module")
def workload(spec):
    derivation = random_run(spec, 250, seed=21)
    view = random_view(spec, 6, seed=22, mode="grey", name="serve-view")
    items = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(items, 300, seed=23)
    return derivation, view, items, pairs


@pytest.fixture()
def served(scheme, workload, tmp_path):
    derivation, view, items, pairs = workload
    reference = QueryEngine(scheme)
    reference.add_run(DEFAULT_RUN, derivation)
    expected = reference.depends_batch(pairs, view, variant=FVLVariant.DEFAULT)
    expected_visible = reference.is_visible_batch(items, view)
    run_file = tmp_path / "serve.fvl"
    reference.checkpoint(run_file)
    engine = QueryEngine(scheme)
    server = ProvenanceServer(engine)
    server.attach(run_file)
    return server, view, items, pairs, expected, expected_visible


# -- policy validation ---------------------------------------------------------


def test_batch_policy_validation():
    with pytest.raises(ValueError, match="max_batch"):
        BatchPolicy(max_batch=0)
    with pytest.raises(ValueError, match="max_linger_us"):
        BatchPolicy(max_linger_us=-1)
    with pytest.raises(ValueError, match="max_queue"):
        BatchPolicy(max_batch=64, max_queue=32)


def test_reopen_policy_validation():
    with pytest.raises(ValueError, match="after_queries"):
        ReopenPolicy(after_queries=0)
    with pytest.raises(ValueError, match="after_seconds"):
        ReopenPolicy(after_seconds=0.0)


def test_server_rejects_zero_workers(scheme):
    with pytest.raises(ValueError, match="workers"):
        ProvenanceServer(QueryEngine(scheme), workers=0)


# -- inline (threadless) mode --------------------------------------------------


def test_inline_drain_answers_bit_identical(served):
    server, view, items, pairs, expected, expected_visible = served
    futures = [server.submit(d1, d2, view) for d1, d2 in pairs]
    visible_futures = [server.submit_visible(uid, view) for uid in items]
    drained = 0
    while server.pending:
        drained += server.drain_once()
    assert drained == len(pairs) + len(items)
    assert [f.result() for f in futures] == expected
    assert [f.result() for f in visible_futures] == expected_visible


def test_inline_convenience_wrappers(served):
    server, view, items, pairs, expected, expected_visible = served
    assert server.depends(*pairs[0], view) == expected[0]
    assert server.is_visible(items[0], view) == expected_visible[0]


def test_one_drain_step_groups_per_view_and_kind(served):
    """A mixed drain makes one engine call per (kind, view, variant) group."""
    server, view, items, pairs, expected, expected_visible = served
    for d1, d2 in pairs[:40]:
        server.submit(d1, d2, view)
        server.submit(d1, d2, view, variant=FVLVariant.SPACE_EFFICIENT)
    for uid in items[:20]:
        server.submit_visible(uid, view)
    before = server.stats
    assert server.drain_once() == 100
    after = server.stats
    assert after.batches - before.batches == 1
    assert after.engine_calls - before.engine_calls == 3
    assert after.coalesced - before.coalesced == 100
    assert after.largest_batch >= 100


def test_drain_respects_max_batch(scheme, workload, tmp_path):
    derivation, view, items, pairs = workload
    reference = QueryEngine(scheme)
    reference.add_run(DEFAULT_RUN, derivation)
    run_file = tmp_path / "bounded.fvl"
    reference.checkpoint(run_file)
    engine = QueryEngine(scheme)
    server = ProvenanceServer(engine, policy=BatchPolicy(max_batch=16, max_queue=4096))
    server.attach(run_file)
    futures = [server.submit(d1, d2, view) for d1, d2 in pairs[:50]]
    assert server.drain_once() == 16
    assert server.pending == 34
    while server.pending:
        server.drain_once()
    assert all(f.done() for f in futures)


def test_queue_full_without_workers_raises(scheme):
    server = ProvenanceServer(
        QueryEngine(scheme), policy=BatchPolicy(max_batch=2, max_queue=2)
    )
    server.submit(1, 2, "any-view")
    server.submit(1, 2, "any-view")
    with pytest.raises(RuntimeError, match="queue is full"):
        server.submit(1, 2, "any-view")


# -- error propagation ---------------------------------------------------------


def test_engine_errors_reach_the_futures(served):
    server, view, items, pairs, _, _ = served
    unknown_view = server.submit(*pairs[0], "no-such-view")
    unknown_run = server.submit(*pairs[1], view, run="no-such-run")
    good = server.submit(*pairs[2], view)
    while server.pending:
        server.drain_once()
    with pytest.raises(ViewError):
        unknown_view.result()
    with pytest.raises(LabelingError):
        unknown_run.result()
    assert isinstance(good.result(), bool)  # a bad group never poisons a good one


def test_stop_fails_leftover_requests(served):
    server, view, _, pairs, _, _ = served
    future = server.submit(*pairs[0], view)
    server.stop()  # never started: the queued request must not hang forever
    with pytest.raises(RuntimeError, match="stopped"):
        future.result(timeout=1)
    with pytest.raises(RuntimeError, match="stopped"):
        server.submit(*pairs[0], view)


# -- threaded mode -------------------------------------------------------------


def test_threaded_clients_get_bit_identical_answers(served):
    server, view, items, pairs, expected, expected_visible = served
    n_clients = 8
    results: list = [None] * n_clients
    visible_results: list = [None] * n_clients
    errors: list = []

    def client(index: int) -> None:
        try:
            futures = [server.submit(d1, d2, view) for d1, d2 in pairs]
            visible = [server.submit_visible(uid, view) for uid in items]
            results[index] = [f.result(timeout=30) for f in futures]
            visible_results[index] = [f.result(timeout=30) for f in visible]
        except Exception as exc:  # pragma: no cover - surfaced by the assert
            errors.append(exc)

    with server:
        assert server.running
        threads = [
            threading.Thread(target=client, args=(index,)) for index in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert not errors
    assert all(answers == expected for answers in results)
    assert all(answers == expected_visible for answers in visible_results)
    stats = server.stats
    total = n_clients * (len(pairs) + len(items))
    assert stats.submitted == stats.answered == total
    # Coalescing actually happened: far fewer engine calls than requests.
    assert stats.engine_calls < total
    assert stats.coalesced > 0
    assert stats.largest_batch > 1


def test_start_twice_rejected_and_restartable(served):
    server, view, _, pairs, expected, _ = served
    with server:
        with pytest.raises(RuntimeError, match="already running"):
            server.start()
        assert server.submit(*pairs[0], view).result(timeout=30) == expected[0]
    assert not server.running
    # stop() drained; a fresh start serves again.
    with server:
        assert server.submit(*pairs[1], view).result(timeout=30) == expected[1]


def test_workers_drain_backlog_on_stop(served):
    """Requests queued before stop() are answered, not dropped."""
    server, view, _, pairs, expected, _ = served
    futures = [server.submit(d1, d2, view) for d1, d2 in pairs]
    server.start()
    server.stop()
    assert [f.result(timeout=30) for f in futures] == expected


# -- the injected clock drives linger ------------------------------------------


class _FakeClock:
    """A monotonic clock that leaps forward a fixed step per reading."""

    def __init__(self, step: float) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def test_linger_deadline_runs_on_the_injected_clock(scheme, workload, tmp_path):
    """A 10-second linger elapses promptly under a fast fake clock.

    The linger deadline used to be pinned to ``time.monotonic()`` no matter
    what ``clock=`` was injected, so this test would hang for the full real
    10 seconds instead of the handful of 50ms condition waits it takes the
    fake clock to leap past the deadline.
    """
    derivation, view, items, pairs = workload
    reference = QueryEngine(scheme)
    reference.add_run(DEFAULT_RUN, derivation)
    run_file = tmp_path / "clock.fvl"
    reference.checkpoint(run_file)
    engine = QueryEngine(scheme)
    server = ProvenanceServer(
        engine,
        policy=BatchPolicy(max_batch=4096, max_linger_us=10_000_000),
        clock=_FakeClock(step=1.0),
    )
    server.attach(run_file)
    with server:
        future = server.submit(*pairs[0], view)
        assert isinstance(future.result(timeout=5), bool)


def test_wall_clock_linger_still_collects_promptly(served):
    """Sanity: the default clock path answers well under the linger bound."""
    server, view, _, pairs, expected, _ = served
    with server:
        assert server.submit(*pairs[0], view).result(timeout=5) == expected[0]


# -- synchronized error surfaces -----------------------------------------------


def test_last_errors_live_in_the_stats_snapshot(served):
    server, view, _, pairs, _, _ = served
    assert server.stats.last_error is None
    assert server.stats.last_warm_error is None
    boom = ViewError("boom")
    warm = LabelingError("cold")
    server.last_error = boom
    server.last_warm_error = warm
    stats = server.stats
    assert stats.last_error is boom
    assert stats.last_warm_error is warm
    # The attribute views agree with the snapshot.
    assert server.last_error is boom
    assert server.last_warm_error is warm


def test_last_error_updates_race_free_with_stats_reads(served):
    """Concurrent writers and readers of last_error never tear or crash."""
    server, view, _, pairs, _, _ = served
    errors: list = []
    stop = threading.Event()
    exceptions = [ViewError(f"e{i}") for i in range(4)]

    def writer(exc) -> None:
        try:
            while not stop.is_set():
                server.last_error = exc
        except Exception as failure:  # pragma: no cover
            errors.append(failure)

    def reader() -> None:
        try:
            while not stop.is_set():
                snapshot = server.stats
                assert snapshot.last_error is None or snapshot.last_error in exceptions
        except Exception as failure:  # pragma: no cover
            errors.append(failure)

    threads = [
        threading.Thread(target=writer, args=(exc,), daemon=True)
        for exc in exceptions
    ]
    threads += [threading.Thread(target=reader, daemon=True) for _ in range(2)]
    for thread in threads:
        thread.start()
    try:
        time.sleep(0.3)
    finally:
        stop.set()
    for thread in threads:
        thread.join(timeout=5)
    assert not errors
    assert server.stats.last_error in exceptions


# -- submit_many (the wire fast path) ------------------------------------------


def test_submit_many_matches_singleton_answers(served):
    server, view, items, pairs, expected, expected_visible = served
    futures = server.submit_many("depends", pairs, view)
    visible = server.submit_many("visible", items, view)
    while server.pending:
        server.drain_once()
    assert [f.result() for f in futures] == expected
    assert [f.result() for f in visible] == expected_visible


def test_submit_many_takes_one_engine_call_per_key(served):
    server, view, _, pairs, expected, _ = served
    before = server.stats
    futures = server.submit_many("depends", pairs, view)
    server.drain_once()
    after = server.stats
    assert after.engine_calls - before.engine_calls == 1
    assert after.submitted - before.submitted == len(pairs)
    assert [f.result() for f in futures] == expected


def test_submit_many_nonblocking_returns_none_when_full(scheme, workload):
    _, view, _, pairs = workload
    server = ProvenanceServer(
        QueryEngine(scheme), policy=BatchPolicy(max_batch=8, max_queue=8)
    )
    assert server.submit_many("depends", pairs[:8], view) is not None
    assert server.pending == 8
    assert server.submit_many("depends", pairs[8:12], view, block=False) is None
    assert server.pending == 8  # the refused batch left no partial residue


def test_submit_many_rejects_impossible_batches(scheme, workload):
    _, view, _, pairs = workload
    server = ProvenanceServer(
        QueryEngine(scheme), policy=BatchPolicy(max_batch=8, max_queue=8)
    )
    with pytest.raises(ValueError, match="never fit"):
        server.submit_many("depends", pairs[:9], view)
    with pytest.raises(ValueError, match="kind"):
        server.submit_many("sideways", pairs[:2], view)


def test_submit_many_empty_and_stopped(scheme, workload):
    _, view, _, pairs = workload
    server = ProvenanceServer(QueryEngine(scheme))
    assert server.submit_many("depends", [], view) == []
    server.stop()
    with pytest.raises(RuntimeError, match="stopped"):
        server.submit_many("depends", pairs[:2], view)
