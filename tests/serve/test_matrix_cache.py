"""Tests for the persistent hot-matrix cache (serve/matrix_cache.py)."""

from __future__ import annotations

import shutil

import pytest

from repro.core import FVLScheme, FVLVariant
from repro.core.run_labeler import RunLabeler
from repro.engine import DEFAULT_RUN, QueryEngine
from repro.errors import LabelingError, SerializationError
from repro.model.projection import ViewProjection
from repro.serve import ProvenanceServer, load_hot_matrices, matrix_cache_path, save_hot_matrices
from repro.serve.matrix_cache import (
    _FILE_HEADER,
    _STATE_HEADER,
    CACHE_MAGIC,
    CACHE_VERSION,
    view_fingerprint,
)
from repro.store import checkpoint_run, compact
from repro.bench import sample_query_pairs
from repro.workloads import build_bioaid_specification, random_run, random_view


@pytest.fixture(scope="module")
def spec():
    return build_bioaid_specification()


@pytest.fixture(scope="module")
def scheme(spec):
    return FVLScheme(spec)


@pytest.fixture(scope="module")
def workload(spec):
    derivation = random_run(spec, 250, seed=31)
    view = random_view(spec, 6, seed=32, mode="grey", name="hot-view")
    items = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(items, 300, seed=33)
    return derivation, view, pairs


@pytest.fixture()
def saved(scheme, workload, tmp_path):
    """A 2-segment run file plus a matrix cache written by a warm 'leader'."""
    derivation, view, pairs = workload
    reference = QueryEngine(scheme)
    reference.add_run(DEFAULT_RUN, derivation)
    expected = reference.depends_batch(pairs, view, variant=FVLVariant.DEFAULT)
    run_file = tmp_path / "hot.fvl"
    labeler = RunLabeler(scheme.index)
    events = derivation.events
    half = len(events) // 2
    for event in events[:half]:
        labeler(event)
    checkpoint_run(run_file, labeler.store, labeler.tree.nodes)
    for event in events[half:]:
        labeler(event)
    checkpoint_run(run_file, labeler.store, labeler.tree.nodes)

    leader = QueryEngine(scheme)
    leader.attach(run_file)
    assert leader.depends_batch(pairs, view) == expected
    entries = save_hot_matrices(leader, DEFAULT_RUN)
    assert entries > 0
    return run_file, view, pairs, expected, entries


def _pair_entries(engine, view, variant=FVLVariant.DEFAULT):
    state = engine.decoded_state(view, variant)
    return dict(state.decode_cache.pair_matrices)


# -- save ----------------------------------------------------------------------


def test_save_requires_positive_budget(scheme):
    with pytest.raises(ValueError, match="max_entries"):
        save_hot_matrices(QueryEngine(scheme), max_entries=0)


def test_save_labelled_shard_needs_explicit_run_file(scheme, workload, tmp_path):
    derivation, view, pairs = workload
    engine = QueryEngine(scheme)
    engine.add_run(DEFAULT_RUN, derivation)
    engine.depends_batch(pairs, view)
    with pytest.raises(LabelingError, match="run_file"):
        save_hot_matrices(engine, DEFAULT_RUN)
    run_file = tmp_path / "labelled.fvl"
    engine.checkpoint(run_file)
    # The labelled shard interns into the shared arena the checkpoint wrote,
    # so its hot matrices are valid against the file.
    assert save_hot_matrices(engine, DEFAULT_RUN, run_file=run_file) > 0


def test_save_ranks_by_hits_and_respects_budget(saved, scheme):
    run_file, view, pairs, expected, entries = saved
    engine = QueryEngine(scheme)
    engine.attach(run_file)
    assert engine.depends_batch(pairs, view) == expected
    # Re-query one pair many times so its matrix is unambiguously hottest.
    hot_pair = pairs[0]
    for _ in range(5):
        engine.depends_batch([hot_pair] * 3, view)
    assert save_hot_matrices(engine, DEFAULT_RUN, max_entries=1) == 1

    follower = QueryEngine(scheme)
    follower.add_view(view)
    follower.attach(run_file)
    assert load_hot_matrices(follower) == 1
    (key,) = _pair_entries(follower, view)
    state = engine.decoded_state(view, FVLVariant.DEFAULT)
    hottest = max(
        (k for k in state.decode_cache.pair_matrices if k[0] == engine.shard_arena()),
        key=lambda k: state.decode_cache.pair_hits.get(k, 0),
    )
    assert (key[1], key[2]) == (hottest[1], hottest[2])


def test_save_writes_an_empty_cache_when_nothing_is_hot(saved, scheme):
    run_file, view, pairs, expected, _ = saved
    cold = QueryEngine(scheme)
    cold.attach(run_file)
    assert save_hot_matrices(cold, DEFAULT_RUN) == 0
    follower = QueryEngine(scheme)
    follower.add_view(view)
    follower.attach(run_file)
    assert load_hot_matrices(follower) == 0  # honest empty file, not an error


# -- load ----------------------------------------------------------------------


def test_load_round_trip_warms_and_answers_bit_identical(saved, scheme):
    run_file, view, pairs, expected, entries = saved
    follower = QueryEngine(scheme)
    follower.add_view(view)
    follower.attach(run_file)
    assert not _pair_entries(follower, view)
    warmed = load_hot_matrices(follower)
    assert warmed == entries
    seeded = _pair_entries(follower, view)
    assert len(seeded) == entries
    assert follower.depends_batch(pairs, view) == expected


def test_load_requires_an_attached_shard(saved, scheme, workload):
    derivation, _, _ = workload
    engine = QueryEngine(scheme)
    engine.add_run(DEFAULT_RUN, derivation)
    with pytest.raises(LabelingError, match="attached"):
        load_hot_matrices(engine)


def test_load_missing_cache_is_zero_not_an_error(scheme, workload, tmp_path):
    derivation, view, pairs = workload
    engine = QueryEngine(scheme)
    engine.add_run(DEFAULT_RUN, derivation)
    run_file = tmp_path / "nocache.fvl"
    engine.checkpoint(run_file)
    follower = QueryEngine(scheme)
    follower.attach(run_file)
    assert load_hot_matrices(follower) == 0


def test_load_skips_unregistered_and_matrix_free_sections(saved, scheme):
    run_file, view, pairs, expected, entries = saved
    follower = QueryEngine(scheme)  # view never registered
    follower.attach(run_file)
    assert load_hot_matrices(follower) == 0
    assert follower.depends_batch(pairs, view) == expected  # cold but correct


def test_load_never_clobbers_decoded_matrices(saved, scheme):
    run_file, view, pairs, expected, entries = saved
    follower = QueryEngine(scheme)
    follower.add_view(view)
    follower.attach(run_file)
    assert follower.depends_batch(pairs, view) == expected  # decode first
    decoded = _pair_entries(follower, view)
    warmed = load_hot_matrices(follower)
    after = _pair_entries(follower, view)
    for key, matrix in decoded.items():
        assert after[key] is matrix  # the live matrix survived the seeding
    assert warmed == entries - len(decoded)


def test_cache_survives_compaction_of_the_same_run(saved, scheme):
    """Path ids are immutable, so a pre-compaction cache warms the new generation."""
    run_file, view, pairs, expected, entries = saved
    assert compact(run_file).compacted
    follower = QueryEngine(scheme)
    follower.add_view(view)
    follower.attach(run_file)
    assert load_hot_matrices(follower) == entries
    assert follower.depends_batch(pairs, view) == expected


def test_load_rejects_foreign_specification(saved, scheme):
    run_file, view, pairs, expected, _ = saved
    cache_file = matrix_cache_path(run_file)
    raw = bytearray(open(cache_file, "rb").read())
    header = list(_FILE_HEADER.unpack_from(raw))
    header[2] ^= 0xDEADBEEF  # flip the recorded grammar fingerprint
    raw[: _FILE_HEADER.size] = _FILE_HEADER.pack(*header)
    with open(cache_file, "wb") as handle:
        handle.write(raw)
    follower = QueryEngine(scheme)
    follower.add_view(view)
    follower.attach(run_file)
    with pytest.raises(SerializationError, match="specification"):
        load_hot_matrices(follower)


def test_load_rejects_newer_generation_cache(saved, scheme, tmp_path):
    run_file, view, pairs, expected, entries = saved
    stale_copy = tmp_path / "stale.fvl"
    shutil.copyfile(run_file, stale_copy)
    assert compact(run_file).compacted  # the real file moves to generation 1
    leader = QueryEngine(scheme)
    leader.attach(run_file)
    assert leader.depends_batch(pairs, view) == expected
    save_hot_matrices(leader, DEFAULT_RUN)  # cache tagged generation 1

    follower = QueryEngine(scheme)
    follower.add_view(view)
    follower.attach(stale_copy)  # still generation 0
    with pytest.raises(SerializationError, match="generation"):
        load_hot_matrices(
            follower, cache_path=matrix_cache_path(run_file)
        )


def test_load_rejects_bad_magic_and_truncation(saved, scheme):
    run_file, view, pairs, expected, _ = saved
    cache_file = matrix_cache_path(run_file)
    follower = QueryEngine(scheme)
    follower.add_view(view)
    follower.attach(run_file)

    raw = open(cache_file, "rb").read()
    with open(cache_file, "wb") as handle:
        handle.write(raw[: _FILE_HEADER.size + 8])  # cut mid-section
    with pytest.raises(SerializationError, match="truncated"):
        load_hot_matrices(follower)

    with open(cache_file, "wb") as handle:
        handle.write(b"NOTACACH" + raw[8:])
    with pytest.raises(SerializationError, match="magic"):
        load_hot_matrices(follower)

    with open(cache_file, "wb") as handle:
        handle.write(
            _FILE_HEADER.pack(CACHE_MAGIC, CACHE_VERSION + 1, 0, 0, 0, 0)
        )
    with pytest.raises(SerializationError, match="version"):
        load_hot_matrices(follower)


def test_load_converts_garbled_sections_to_serialization_error(saved, scheme):
    """Corruption past the header (bad UTF-8, absurd dims) is one error type."""
    run_file, view, pairs, expected, _ = saved
    follower = QueryEngine(scheme)
    follower.add_view(view)
    follower.attach(run_file)
    with open(matrix_cache_path(run_file), "wb") as handle:
        handle.write(_FILE_HEADER.pack(CACHE_MAGIC, CACHE_VERSION, 0, 0, 0, 1))
        handle.write(_STATE_HEADER.pack(2, 0, 1, 0))
        handle.write(b"\xff\xfe")  # not UTF-8
    with pytest.raises(SerializationError, match="corrupt matrix cache"):
        load_hot_matrices(follower)


def test_server_attach_swallows_corrupt_cache(saved, scheme):
    """A rotten side file must not take serving down — attach proceeds cold."""
    run_file, view, pairs, expected, _ = saved
    cache_file = matrix_cache_path(run_file)
    with open(cache_file, "wb") as handle:
        handle.write(b"garbage")
    engine = QueryEngine(scheme)
    engine.add_view(view)
    server = ProvenanceServer(engine)
    mapped, warmed = server.attach(run_file)
    assert warmed == 0
    assert isinstance(server.last_warm_error, SerializationError)
    futures = [server.submit(d1, d2, view) for d1, d2 in pairs]
    while server.pending:
        server.drain_once()
    assert [f.result() for f in futures] == expected


def test_view_fingerprint_separates_same_named_views(spec, scheme, workload, tmp_path):
    derivation, view, pairs = workload
    impostor = random_view(spec, 6, seed=99, mode="grey", name=view.name)
    assert view_fingerprint(view) != view_fingerprint(impostor)

    reference = QueryEngine(scheme)
    reference.add_run(DEFAULT_RUN, derivation)
    reference.depends_batch(pairs, view)
    run_file = tmp_path / "fp.fvl"
    reference.checkpoint(run_file)
    leader = QueryEngine(scheme)
    leader.attach(run_file)
    leader.depends_batch(pairs, view)
    assert save_hot_matrices(leader, DEFAULT_RUN) > 0

    follower = QueryEngine(scheme)
    follower.add_view(impostor)  # same name, different structure
    follower.attach(run_file)
    assert load_hot_matrices(follower) == 0  # skipped, never guessed at


# -- hit-count persistence (format v2) -----------------------------------------


def test_warm_seeded_hits_survive_load_then_save(saved, scheme):
    """A follower that loads the cache and re-saves keeps the warm working set.

    Before v2, seeded entries started at zero ``pair_hits``, so a follower
    saving under a tight budget ranked the leader's whole warm set below any
    entry it had touched even once — one load→save cycle could drop it all.
    """
    run_file, view, pairs, expected, entries = saved

    # The leader makes one pair unambiguously hottest, saves a 1-entry cache.
    leader = QueryEngine(scheme)
    leader.attach(run_file)
    assert leader.depends_batch(pairs, view) == expected
    hot_pair = pairs[0]
    for _ in range(5):
        leader.depends_batch([hot_pair] * 3, view)
    assert save_hot_matrices(leader, DEFAULT_RUN, max_entries=1) == 1
    leader_state = leader.decoded_state(view, FVLVariant.DEFAULT)
    leader_hottest_key = max(
        (k for k in leader_state.decode_cache.pair_matrices
         if k[0] == leader.shard_arena()),
        key=lambda k: leader_state.decode_cache.pair_hits.get(k, 0),
    )
    leader_hits = leader_state.decode_cache.pair_hits[leader_hottest_key]
    assert leader_hits > 1

    # The follower loads it, touches a *different* pair once, then re-saves
    # under the same 1-entry budget.  The seeded entry must out-rank it.
    follower = QueryEngine(scheme)
    follower.add_view(view)
    follower.attach(run_file)
    assert load_hot_matrices(follower) == 1
    state = follower.decoded_state(view, FVLVariant.DEFAULT)
    (seeded_key,) = state.decode_cache.pair_matrices
    assert state.decode_cache.pair_hits[seeded_key] == leader_hits
    cold_pair = pairs[1] if pairs[1] != hot_pair else pairs[2]
    follower.depends_batch([cold_pair], view)
    assert save_hot_matrices(follower, DEFAULT_RUN, max_entries=1) == 1

    # A third tier still sees the original hottest pair, with its hits.
    third = QueryEngine(scheme)
    third.add_view(view)
    third.attach(run_file)
    assert load_hot_matrices(third) == 1
    third_state = third.decoded_state(view, FVLVariant.DEFAULT)
    (key,) = third_state.decode_cache.pair_matrices
    assert (key[1], key[2]) == (leader_hottest_key[1], leader_hottest_key[2])
    assert third_state.decode_cache.pair_hits[key] >= leader_hits


def test_v1_cache_files_rejected_loudly(saved, scheme):
    """The pre-hits format is refused (and the server warm path goes cold)."""
    run_file, view, pairs, expected, entries = saved
    cache_file = matrix_cache_path(run_file)
    with open(cache_file, "rb") as handle:
        raw = bytearray(handle.read())
    magic_end = len(CACHE_MAGIC)
    version = int.from_bytes(raw[magic_end : magic_end + 4], "little")
    assert version == CACHE_VERSION == 2
    raw[magic_end : magic_end + 4] = (1).to_bytes(4, "little")
    with open(cache_file, "wb") as handle:
        handle.write(bytes(raw))
    follower = QueryEngine(scheme)
    follower.add_view(view)
    follower.attach(run_file)
    with pytest.raises(SerializationError, match="version"):
        load_hot_matrices(follower)
