"""Generation-probe reopen under live traffic (serve + engine.maybe_reopen).

The ISSUE-5 follower contract: a reader process serving coalesced batches
through :class:`ProvenanceServer` must follow a writer's compaction — via
header-generation probes only, no in-process lifecycle manager — while
answers stay bit-identical across the remap.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import FVLScheme, FVLVariant
from repro.core.run_labeler import RunLabeler
from repro.engine import DEFAULT_RUN, QueryEngine
from repro.model.projection import ViewProjection
from repro.serve import BatchPolicy, ProvenanceServer, ReopenPolicy
from repro.store import checkpoint_run, compact
from repro.bench import sample_query_pairs
from repro.workloads import build_bioaid_specification, random_run, random_view


@pytest.fixture(scope="module")
def spec():
    return build_bioaid_specification()


@pytest.fixture(scope="module")
def scheme(spec):
    return FVLScheme(spec)


@pytest.fixture()
def segmented(scheme, spec, tmp_path):
    """A 4-segment run file, its view, query pairs, and reference answers."""
    derivation = random_run(spec, 300, seed=51)
    view = random_view(spec, 6, seed=52, mode="grey", name="reopen-serve-view")
    items = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(items, 400, seed=53)
    run_file = tmp_path / "segmented.fvl"
    labeler = RunLabeler(scheme.index)
    events = derivation.events
    step = max(1, len(events) // 4)
    for lo in range(0, len(events), step):
        for event in events[lo : lo + step]:
            labeler(event)
        checkpoint_run(run_file, labeler.store, labeler.tree.nodes)
    reference = QueryEngine(scheme)
    reference.add_run(DEFAULT_RUN, derivation)
    expected = reference.depends_batch(pairs, view, variant=FVLVariant.DEFAULT)
    return run_file, view, pairs, expected


def test_maybe_reopen_probes_and_remaps(segmented, scheme):
    run_file, view, pairs, expected = segmented
    engine = QueryEngine(scheme)
    engine.attach(run_file)
    assert engine.maybe_reopen() is False  # same generation: a no-op probe
    assert compact(run_file).compacted
    assert engine.maybe_reopen() is True
    assert engine.mapped_store().generation == 1
    assert engine.depends_batch(pairs, view) == expected
    assert engine.maybe_reopen() is False


def test_maybe_reopen_is_false_for_labelled_and_vanished_shards(
    segmented, scheme, spec
):
    run_file, view, pairs, expected = segmented
    engine = QueryEngine(scheme)
    engine.add_run("labelled", random_run(spec, 50, seed=54))
    assert engine.maybe_reopen("labelled") is False
    engine.attach(run_file)
    run_file.unlink()  # mid-swap / deleted file: probe declines, no raise
    assert engine.maybe_reopen() is False


def test_server_probe_follows_compaction_on_query_backoff(segmented, scheme):
    """Inline mode: the Nth query triggers the probe which triggers the remap."""
    run_file, view, pairs, expected = segmented
    engine = QueryEngine(scheme)
    server = ProvenanceServer(
        engine, reopen=ReopenPolicy(after_queries=1, after_seconds=3600.0)
    )
    server.attach(run_file, warm=False)
    assert server.depends(*pairs[0], view) == expected[0]
    assert compact(run_file).compacted
    assert engine.mapped_store().generation == 0  # not yet probed
    assert server.depends(*pairs[1], view) == expected[1]
    assert engine.mapped_store().generation == 1  # probe fired on the answer
    stats = server.stats
    assert stats.probes >= 2 and stats.reopens == 1


def test_concurrent_batches_stay_bit_identical_across_compaction(segmented, scheme):
    """Reader threads hammer the server while the 'writer' compacts the file.

    Every answer returned before, during, and after the remap must equal the
    single-process reference — the remap must be invisible to clients.
    """
    run_file, view, pairs, expected = segmented
    engine = QueryEngine(scheme)
    server = ProvenanceServer(
        engine,
        policy=BatchPolicy(max_batch=256, max_linger_us=100),
        reopen=ReopenPolicy(after_queries=50, after_seconds=0.01),
        workers=2,
    )
    server.attach(run_file, warm=False)
    n_clients = 6
    rounds = 8
    errors: list = []
    mismatches: list = []
    compacted = threading.Event()

    def client(index: int) -> None:
        try:
            for round_no in range(rounds):
                futures = [server.submit(d1, d2, view) for d1, d2 in pairs]
                answers = [f.result(timeout=60) for f in futures]
                if answers != expected:
                    mismatches.append((index, round_no))
                if round_no == rounds // 2 and index == 0:
                    # Mid-traffic, the writer swaps in the compacted file.
                    assert compact(run_file).compacted
                    compacted.set()
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    with server:
        threads = [
            threading.Thread(target=client, args=(index,)) for index in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert not errors
    assert not mismatches
    assert compacted.is_set()
    # The server followed the writer: probes fired and the shard remapped.
    stats = server.stats
    assert stats.probes > 0
    assert stats.reopens == 1
    assert engine.mapped_store().generation == 1
    assert stats.answered == n_clients * rounds * len(pairs)
