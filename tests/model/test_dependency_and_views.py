"""Tests for dependency assignments, specifications and views (Defs 6-9)."""

import pytest

from repro.errors import ValidationError, ViewError
from repro.model import (
    DependencyAssignment,
    Module,
    WorkflowSpecification,
    WorkflowView,
    black_box_view,
    default_view,
)
from repro.model.dependency import black_box_pairs, identity_pairs


def test_black_box_pairs():
    m = Module("m", 2, 3)
    assert black_box_pairs(m) == frozenset(
        {(1, 1), (1, 2), (1, 3), (2, 1), (2, 2), (2, 3)}
    )


def test_identity_pairs_covers_all_ports():
    m = Module("m", 2, 3)
    pairs = identity_pairs(m)
    assert all(any(i == p for p, _ in pairs) for i in (1, 2))
    assert all(any(o == p for _, p in pairs) for o in (1, 2, 3))


def test_assignment_validation_accepts_running_example(running_spec):
    atoms = [running_spec.grammar.module(n) for n in running_spec.grammar.atomic_modules]
    running_spec.dependencies.validate_for(atoms)


def test_assignment_rejects_uncovered_input():
    m = Module("m", 2, 1)
    deps = DependencyAssignment({"m": {(1, 1)}})
    with pytest.raises(ValidationError, match="contribute"):
        deps.validate_for([m])


def test_assignment_rejects_uncovered_output():
    m = Module("m", 1, 2)
    deps = DependencyAssignment({"m": {(1, 1)}})
    with pytest.raises(ValidationError, match="depend"):
        deps.validate_for([m])


def test_assignment_rejects_out_of_range_ports():
    m = Module("m", 1, 1)
    deps = DependencyAssignment({"m": {(1, 2)}})
    with pytest.raises(ValidationError):
        deps.validate_for([m])


def test_assignment_missing_module():
    m = Module("m", 1, 1)
    deps = DependencyAssignment({})
    with pytest.raises(ValidationError):
        deps.validate_for([m])
    deps.validate_for([m], require_all=False)  # tolerated when not required


def test_assignment_helpers():
    m = Module("m", 1, 2)
    deps = DependencyAssignment({"m": {(1, 1), (1, 2)}})
    assert deps.depends("m", 1, 2)
    assert deps.is_black_box_for(m)
    replaced = deps.with_module(m, {(1, 1)})
    assert not replaced.depends("m", 1, 2)
    merged = replaced.merged_with(deps)
    assert merged.depends("m", 1, 2)
    assert deps.restricted_to(["zzz"]).modules() == set()


def test_specification_requires_atomic_coverage(running_spec):
    grammar = running_spec.grammar
    with pytest.raises(ValidationError):
        WorkflowSpecification(grammar, DependencyAssignment({}))


def test_specification_coarse_grained_classification(running_spec, bioaid_spec):
    assert not running_spec.is_coarse_grained()
    # The BioAID generator uses single-source/sink chains, so coarsening works.
    assert bioaid_spec.has_single_source_sink_productions()
    coarse = bioaid_spec.coarsened()
    assert coarse.is_coarse_grained()


def test_coarsened_rejected_without_single_source_sink(running_spec):
    assert not running_spec.has_single_source_sink_productions()
    with pytest.raises(ValidationError):
        running_spec.coarsened()


def test_default_view_is_proper_and_white_box(running_spec):
    view = default_view(running_spec)
    view.validate_against(running_spec)
    assert view.expands("C")
    assert view.has_white_box_dependencies(running_spec)


def test_view_u2_is_proper_and_grey_box(running_spec, view_u2):
    view_u2.validate_against(running_spec)
    assert not view_u2.expands("C")
    assert not view_u2.has_white_box_dependencies(running_spec)


def test_view_atomic_modules_of_u2(running_spec, view_u2):
    atomic = view_u2.view_atomic_modules(running_spec.grammar)
    assert atomic == {"a", "b", "c", "d", "e", "C"}
    assert "D" not in atomic  # underivable in the view
    assert "g" not in atomic


def test_view_with_unknown_composite_rejected(running_spec):
    view = WorkflowView({"S", "nope"}, DependencyAssignment({}), name="bad")
    with pytest.raises(ViewError):
        view.validate_against(running_spec)


def test_view_missing_dependencies_rejected(running_spec):
    view = WorkflowView({"S", "A", "B"}, DependencyAssignment({}), name="bad")
    with pytest.raises(ViewError):
        view.validate_against(running_spec)
    assert not view.is_proper(running_spec)


def test_black_box_view_helper(running_spec):
    view = black_box_view(running_spec, {"S", "A", "B"}, name="bb")
    view.validate_against(running_spec)
    pairs = view.dependencies.pairs("C")
    assert pairs == black_box_pairs(running_spec.grammar.module("C"))


def test_abstraction_view_is_white_box(running_spec, running_views):
    abstraction = [v for v in running_views if v.name == "abstraction"][0]
    abstraction.validate_against(running_spec)
    assert abstraction.has_white_box_dependencies(running_spec)
