"""Tests for the derivation engine, runs and view projection."""

import pytest

from repro.errors import DerivationError
from repro.model import Derivation, ViewProjection, default_view
from tests.conftest import derive_running


def test_initial_state(running_spec):
    derivation = Derivation(running_spec)
    run = derivation.run
    assert run.root.module_name == "S"
    # S has 2 inputs and 2 outputs -> 4 boundary data items.
    assert run.n_data_items == 4
    assert derivation.pending_instances() == ["S:1"]
    assert not derivation.is_complete
    initial = derivation.initial_event
    assert len(initial.input_items) == 2
    assert len(initial.output_items) == 2


def test_expand_creates_children_and_items(running_spec):
    derivation = Derivation(running_spec)
    event = derivation.expand("S:1", 1)
    assert event.production_index == 1
    assert [child.module_name for child in event.children] == [
        "a", "b", "A", "C", "d", "c"
    ]
    # W1 has 6 internal data edges.
    assert len(event.new_items) == 6
    run = derivation.run
    assert run.n_data_items == 10
    assert run.instance("A:1").parent == "S:1"
    assert run.instance("A:1").position == 3


def test_expand_rejects_wrong_production(running_spec):
    derivation = Derivation(running_spec)
    with pytest.raises(DerivationError):
        derivation.expand("S:1", 2)  # production 2 rewrites A, not S


def test_expand_rejects_double_expansion(running_spec):
    derivation = Derivation(running_spec)
    derivation.expand("S:1", 1)
    with pytest.raises(DerivationError):
        derivation.expand("S:1", 1)


def test_expand_rejects_atomic_instance(running_spec):
    derivation = Derivation(running_spec)
    derivation.expand("S:1", 1)
    with pytest.raises(DerivationError):
        derivation.expand("a:1", 1)


def test_boundary_items_are_reattached(running_spec):
    derivation = Derivation(running_spec)
    derivation.expand("S:1", 1)
    run = derivation.run
    first_input = derivation.initial_event.input_items[0]
    item = run.item(first_input)
    # The first input of S maps to the first initial input of W1 (a.in1).
    assert item.consumers[0] == ("S:1", 1)
    assert item.consumers[1] == ("a:1", 1)
    assert item.is_initial_input


def test_listeners_receive_replay_and_live_events(running_spec):
    derivation = Derivation(running_spec)
    derivation.expand("S:1", 1)
    seen = []
    derivation.subscribe(seen.append, replay=True)
    assert len(seen) == 2  # initial + one expansion
    derivation.expand("A:1", 3)
    assert len(seen) == 3


def test_complete_derivation_has_only_atomic_instances(running_spec):
    derivation = derive_running(running_spec, seed=3)
    assert derivation.is_complete
    grammar = running_spec.grammar
    for uid, instance in derivation.run.instances.items():
        if grammar.is_composite(instance.module_name):
            assert instance.is_expanded, uid


def test_expand_all_with_strategy(running_spec):
    derivation = Derivation(running_spec)
    # Always choose the last candidate production (non-recursive alternatives).
    derivation.expand_all(lambda instance, candidates: candidates[-1])
    assert derivation.is_complete


def test_ancestors_chain(running_spec):
    derivation = Derivation(running_spec)
    derivation.expand("S:1", 1)
    derivation.expand("A:1", 2)
    run = derivation.run
    assert run.ancestors("B:1") == ["A:1", "S:1"]
    assert run.ancestors("S:1") == []


def test_projection_default_view_sees_everything(running_spec):
    derivation = derive_running(running_spec, seed=5)
    projection = ViewProjection(derivation.run, default_view(running_spec))
    assert projection.visible_items == frozenset(derivation.run.data_items)
    assert projection.visible_instances == frozenset(derivation.run.instances)


def test_projection_u2_hides_c_internals(running_spec, view_u2):
    derivation = Derivation(running_spec)
    derivation.expand("S:1", 1)
    items_before = set(derivation.run.data_items)
    derivation.expand("C:1", 5)  # expand C; its internals must be hidden in U2
    projection = ViewProjection(derivation.run, view_u2)
    assert projection.visible_items == frozenset(items_before)
    assert not projection.is_visible_instance("D:1")
    assert projection.is_leaf_instance("C:1")


def test_projection_partial_run_leaves(running_spec):
    derivation = Derivation(running_spec)
    derivation.expand("S:1", 1)
    projection = ViewProjection(derivation.run, default_view(running_spec))
    # A and C are visible but not yet expanded -> they are leaves of R_U.
    assert projection.is_leaf_instance("A:1")
    assert projection.is_leaf_instance("C:1")
    assert not projection.is_leaf_instance("S:1")


def test_leaf_attachment(running_spec, view_u2):
    derivation = Derivation(running_spec)
    derivation.expand("S:1", 1)
    derivation.expand("C:1", 5)
    projection = ViewProjection(derivation.run, view_u2)
    run = derivation.run
    item_uid = run.item_at("C:1", "in", 1)
    producer, consumer = projection.leaf_attachment(item_uid)
    assert consumer == ("C:1", 1)  # deeper attachments are hidden in U2
