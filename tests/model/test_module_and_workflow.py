"""Unit tests for modules, simple workflows and their structural constraints."""

import pytest

from repro.errors import ValidationError, WorkflowStructureError
from repro.model import DataEdge, Module, SimpleWorkflow


def test_module_port_ranges():
    m = Module("M", 2, 3)
    assert list(m.input_ports) == [1, 2]
    assert list(m.output_ports) == [1, 2, 3]


def test_module_requires_positive_ports():
    with pytest.raises(ValidationError):
        Module("M", 0, 1)
    with pytest.raises(ValidationError):
        Module("M", 1, 0)


def test_module_requires_name():
    with pytest.raises(ValidationError):
        Module("", 1, 1)


def test_module_port_names_default_and_explicit():
    m = Module("M", 1, 1)
    assert m.input_name(1) == "M.in1"
    named = Module("N", 1, 1, input_names=("x",), output_names=("y",))
    assert named.input_name(1) == "x"
    assert named.output_name(1) == "y"


def test_module_port_name_length_mismatch():
    with pytest.raises(ValidationError):
        Module("M", 2, 1, input_names=("only-one",))


def test_module_invalid_port_lookup():
    m = Module("M", 1, 2)
    with pytest.raises(ValidationError):
        m.input_name(2)
    with pytest.raises(ValidationError):
        m.output_name(3)


def _two_module_workflow():
    a = Module("a", 1, 1)
    b = Module("b", 1, 1)
    return SimpleWorkflow([("a", a), ("b", b)], [DataEdge("a", 1, "b", 1)])


def test_simple_workflow_boundaries():
    w = _two_module_workflow()
    assert w.initial_inputs == (("a", 1),)
    assert w.final_outputs == (("b", 1),)
    assert w.n_initial_inputs == 1
    assert w.n_final_outputs == 1


def test_simple_workflow_topological_order():
    w = _two_module_workflow()
    assert w.topological_order == ("a", "b")
    assert w.position_of("a") == 1
    assert w.occurrence_at(2) == "b"


def test_simple_workflow_rejects_adjacent_edges():
    a = Module("a", 1, 1)
    b = Module("b", 2, 1)
    c = Module("c", 1, 1)
    with pytest.raises(WorkflowStructureError):
        SimpleWorkflow(
            [("a", a), ("b", b), ("c", c)],
            [DataEdge("a", 1, "b", 1), DataEdge("c", 1, "b", 1), DataEdge("a", 1, "b", 2)],
        )


def test_simple_workflow_rejects_cycles():
    a = Module("a", 1, 1)
    b = Module("b", 1, 1)
    with pytest.raises(WorkflowStructureError):
        SimpleWorkflow(
            [("a", a), ("b", b)],
            [DataEdge("a", 1, "b", 1), DataEdge("b", 1, "a", 1)],
        )


def test_simple_workflow_rejects_unknown_ports():
    a = Module("a", 1, 1)
    b = Module("b", 1, 1)
    with pytest.raises(ValidationError):
        SimpleWorkflow([("a", a), ("b", b)], [DataEdge("a", 2, "b", 1)])


def test_simple_workflow_rejects_unknown_occurrence():
    a = Module("a", 1, 1)
    with pytest.raises(ValidationError):
        SimpleWorkflow([("a", a)], [DataEdge("a", 1, "zzz", 1)])


def test_simple_workflow_rejects_duplicate_occurrence_ids():
    a = Module("a", 1, 1)
    with pytest.raises(ValidationError):
        SimpleWorkflow([("a", a), ("a", a)], [])


def test_simple_workflow_multiset_of_same_module():
    a = Module("a", 1, 1)
    w = SimpleWorkflow([("a1", a), ("a2", a)], [DataEdge("a1", 1, "a2", 1)])
    assert w.module_names() == ["a", "a"]


def test_explicit_boundary_order_is_validated():
    a = Module("a", 2, 1)
    w = SimpleWorkflow([("a", a)], [], initial_input_order=[("a", 2), ("a", 1)])
    assert w.initial_inputs == (("a", 2), ("a", 1))
    with pytest.raises(ValidationError):
        SimpleWorkflow([("a", a)], [], initial_input_order=[("a", 1)])


def test_topological_order_is_deterministic_under_edge_order():
    a, b, c = Module("a", 1, 2), Module("b", 1, 1), Module("c", 2, 1)
    edges = [DataEdge("a", 1, "b", 1), DataEdge("a", 2, "c", 1), DataEdge("b", 1, "c", 2)]
    w1 = SimpleWorkflow([("a", a), ("b", b), ("c", c)], edges)
    w2 = SimpleWorkflow([("a", a), ("b", b), ("c", c)], list(reversed(edges)))
    assert w1.topological_order == w2.topological_order == ("a", "b", "c")


def test_empty_workflow_is_rejected():
    with pytest.raises(ValidationError):
        SimpleWorkflow([], [])
