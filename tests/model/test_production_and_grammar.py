"""Unit tests for productions, grammars and properness (Definitions 3-5)."""

import pytest

from repro.errors import GrammarError, ImproperGrammarError, ValidationError
from repro.model import DataEdge, Module, Production, SimpleWorkflow, WorkflowGrammar


def _simple(module_names, edges=()):
    modules = [(name, Module(name, 1, 1)) for name in module_names]
    return SimpleWorkflow(modules, edges)


def test_production_arity_must_match():
    lhs = Module("M", 2, 1)
    rhs = _simple(["x"])  # one initial input, one final output
    with pytest.raises(ValidationError):
        Production(lhs, rhs)


def test_production_default_maps_are_identity():
    lhs = Module("M", 1, 1)
    production = Production(lhs, _simple(["x"]))
    assert production.input_map == (1,)
    assert production.output_map == (1,)
    assert production.rhs_initial_input(1) == ("x", 1)
    assert production.rhs_final_output(1) == ("x", 1)


def test_production_explicit_permutation():
    lhs = Module("M", 2, 2)
    a = Module("a", 2, 2)
    rhs = SimpleWorkflow([("a", a)], [])
    production = Production(lhs, rhs, input_map=[2, 1])
    assert production.rhs_initial_input(1) == ("a", 2)
    assert production.rhs_initial_input(2) == ("a", 1)


def test_production_rejects_bad_permutation():
    lhs = Module("M", 2, 2)
    a = Module("a", 2, 2)
    with pytest.raises(ValidationError):
        Production(lhs, SimpleWorkflow([("a", a)], []), input_map=[1, 1])


def test_grammar_basic_accessors(running_spec):
    grammar = running_spec.grammar
    assert grammar.start == "S"
    assert grammar.is_composite("A")
    assert grammar.is_atomic("a")
    assert len(grammar.productions) == 8
    assert grammar.production_index(grammar.production(3)) == 3
    assert [k for k, _ in grammar.productions_for("A")] == [2, 3]


def test_grammar_rejects_atomic_lhs():
    s = Module("S", 1, 1)
    a = Module("a", 1, 1)
    b = Module("b", 1, 1)
    with pytest.raises(GrammarError):
        WorkflowGrammar(
            {"S": s, "a": a, "b": b},
            {"S"},
            "S",
            [Production(s, SimpleWorkflow([("a", a)], [])),
             Production(a, SimpleWorkflow([("b", b)], []))],
        )


def test_grammar_rejects_unknown_start():
    a = Module("a", 1, 1)
    with pytest.raises(GrammarError):
        WorkflowGrammar({"a": a}, set(), "S", [])


def test_grammar_start_must_be_composite():
    s = Module("S", 1, 1)
    with pytest.raises(GrammarError):
        WorkflowGrammar({"S": s}, set(), "S", [])


def test_grammar_rejects_unregistered_module_in_rhs():
    s = Module("S", 1, 1)
    ghost = Module("ghost", 1, 1)
    with pytest.raises(GrammarError):
        WorkflowGrammar(
            {"S": s},
            {"S"},
            "S",
            [Production(s, SimpleWorkflow([("ghost", ghost)], []))],
        )


def test_properness_of_running_example(running_spec):
    assert running_spec.grammar.is_proper()
    running_spec.grammar.check_proper()


def test_underivable_module_detected():
    s, a = Module("S", 1, 1), Module("a", 1, 1)
    orphan = Module("X", 1, 1)
    grammar = WorkflowGrammar(
        {"S": s, "a": a, "X": orphan},
        {"S", "X"},
        "S",
        [
            Production(s, SimpleWorkflow([("a", a)], [])),
            Production(orphan, SimpleWorkflow([("a", a)], [])),
        ],
    )
    assert not grammar.is_proper()
    with pytest.raises(ImproperGrammarError, match="underivable"):
        grammar.check_proper()


def test_unproductive_module_detected():
    s, x = Module("S", 1, 1), Module("X", 1, 1)
    grammar = WorkflowGrammar(
        {"S": s, "X": x},
        {"S", "X"},
        "S",
        [
            Production(s, SimpleWorkflow([("X", x)], [])),
            Production(x, SimpleWorkflow([("X", x)], [])),
        ],
    )
    assert not grammar.is_proper()
    with pytest.raises(ImproperGrammarError, match="unproductive"):
        grammar.check_proper()


def test_unit_cycle_detected():
    s, x, a = Module("S", 1, 1), Module("X", 1, 1), Module("a", 1, 1)
    grammar = WorkflowGrammar(
        {"S": s, "X": x, "a": a},
        {"S", "X"},
        "S",
        [
            Production(s, SimpleWorkflow([("X", x)], [])),
            Production(x, SimpleWorkflow([("S", s)], [])),
            Production(x, SimpleWorkflow([("a", a)], [])),
            Production(s, SimpleWorkflow([("a", a)], [])),
        ],
    )
    assert grammar.unit_cycles()
    with pytest.raises(ImproperGrammarError, match="cycle"):
        grammar.check_proper()


def test_restricted_grammar_of_view(running_spec):
    grammar = running_spec.grammar
    restricted = grammar.restricted_to({"S", "A", "B"})
    assert set(restricted.composite_modules) == {"S", "A", "B"}
    # D, E, f, g are no longer derivable and are pruned.
    assert "D" not in restricted.module_names
    assert "g" not in restricted.module_names
    assert "C" in restricted.module_names  # still derivable, now atomic-in-view
    assert restricted.is_proper()


def test_restricted_grammar_rejects_non_composite():
    pass


def test_grammar_size_positive(running_spec):
    assert running_spec.grammar.size() > 0
