"""Smoke tests for the benchmark harness (tiny parameters)."""

import pytest

from repro.bench import (
    PreparedWorkload,
    fig17_data_label_length,
    fig19_view_label_length,
    fig20_query_time,
    fig21_multiview_space,
    fig23_query_time_vs_drl,
    fig24_nesting_depth,
    format_table,
    prepare_bioaid,
    table1_factors,
    write_csv,
)
from repro.bench.measure import ResultTable


@pytest.fixture(scope="module")
def workload() -> PreparedWorkload:
    return prepare_bioaid()


def test_fig17_shape(workload):
    table = fig17_data_label_length(workload, run_sizes=(200, 400), samples=1)
    assert table.columns == ["run_size", "FVL-avg", "FVL-max", "DRL-avg", "DRL-max"]
    assert len(table.rows) == 2
    fvl = table.column("FVL-avg")
    drl = table.column("DRL-avg")
    # Labels grow with the run size and DRL labels carry a constant overhead.
    assert fvl[1] >= fvl[0]
    assert all(d > f for f, d in zip(fvl, drl))


def test_fig19_ordering(workload):
    table = fig19_view_label_length(workload, view_sizes={"small": 2, "large": 12})
    for row in table.rows:
        _, space, default, query = row
        assert space <= default <= query


def test_fig20_runs(workload):
    table = fig20_query_time(workload, run_sizes=(200,), n_queries=60)
    assert len(table.rows) == 1
    # The space-efficient variant must be the slowest of the three.
    _, space, default, query = table.rows[0]
    assert space >= default and space >= query


def test_fig21_fvl_flat_drl_linear(workload):
    table = fig21_multiview_space(workload, run_size=300, max_views=4)
    fvl = table.column("FVL")
    drl = table.column("DRL")
    assert len(set(fvl)) == 1  # view-adaptive: independent of the number of views
    assert drl[-1] > drl[0] * 2.5  # per-view labels grow roughly linearly


def test_fig23_runs(workload):
    table = fig23_query_time_vs_drl(
        workload, run_size=300, n_queries=100, view_sizes={"small": 2}
    )
    assert table.columns == ["view", "FVL", "Matrix-Free FVL", "DRL"]
    assert len(table.rows) == 1


def test_fig24_monotone_trend():
    table = fig24_nesting_depth(depths=(2, 6), run_size=600, workflow_size=8)
    bits = table.column("FVL_avg_bits")
    assert bits[1] > bits[0]


def test_table1_classifications():
    table = table1_factors(run_size=400, n_queries=50, workflow_size=8)
    assert len(table.rows) == 4
    allowed = {"no impact", "low impact", "high impact"}
    for row in table.rows:
        assert set(row[1:]) <= allowed


def test_reporting_helpers(tmp_path):
    table = ResultTable("demo", ["a", "b"])
    table.add_row(1, 2)
    text = format_table(table)
    assert "demo" in text and "a" in text
    path = tmp_path / "demo.csv"
    write_csv(table, str(path))
    assert path.read_text().splitlines()[0] == "a,b"
    with pytest.raises(ValueError):
        table.add_row(1)
