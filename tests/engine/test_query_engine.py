"""Unit tests for the batched provenance query engine.

Covers cache hit/miss accounting, LRU eviction, multi-run sharding,
concurrent access, and the error paths (unknown run id, unknown view,
unsafe view) — all raising the existing :mod:`repro.errors` types.
"""

from __future__ import annotations

import random
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import FVLScheme, FVLVariant, QueryEngine
from repro.engine import DEFAULT_RUN, MATRIX_FREE, DependsQuery
from repro.errors import (
    DecodingError,
    LabelingError,
    UnsafeWorkflowError,
    ViewError,
)
from repro.model import WorkflowSpecification, default_view
from repro.model.projection import ViewProjection
from repro.workloads import (
    build_running_example,
    build_unsafe_example,
    random_run,
    random_view,
    running_example_views,
)

SPEC = build_running_example()
SCHEME = FVLScheme(SPEC)
VIEWS = running_example_views(SPEC)


def _visible_pairs(derivation, view, n=40, seed=0):
    visible = sorted(ViewProjection(derivation.run, view).visible_items)
    rng = random.Random(seed)
    return [(rng.choice(visible), rng.choice(visible)) for _ in range(n)]


def _expected(derivation, labeler, pairs, view, variant=FVLVariant.DEFAULT):
    view_label = SCHEME.label_view(view, variant)
    return [
        SCHEME.depends(labeler.label(d1), labeler.label(d2), view_label)
        for d1, d2 in pairs
    ]


@pytest.fixture()
def derivation():
    return random_run(SPEC, 120, seed=3)


@pytest.fixture()
def engine(derivation):
    engine = QueryEngine(SCHEME, cache_size=4)
    engine.add_run(DEFAULT_RUN, derivation)
    return engine


# -- correctness of the batched paths ------------------------------------------------


@pytest.mark.parametrize("variant", list(FVLVariant))
def test_batch_matches_single_pair_api(engine, derivation, variant):
    labeler = engine.run_labeler()
    for view in VIEWS:
        pairs = _visible_pairs(derivation, view)
        assert engine.depends_batch(pairs, view, variant=variant) == _expected(
            derivation, labeler, pairs, view, variant
        )


def test_depends_single_wrapper(engine, derivation):
    view = VIEWS[0]
    (pair,) = _visible_pairs(derivation, view, n=1)
    assert engine.depends(*pair, view) == engine.depends_batch([pair], view)[0]


def test_matrix_free_pseudo_variant(engine, derivation):
    view = random_view(SPEC, 2, seed=5, mode="black", name="coarse-rb")
    pairs = _visible_pairs(derivation, view)
    labeler = engine.run_labeler()
    mf_label = SCHEME.label_view_matrix_free(view)
    expected = [
        SCHEME.depends(labeler.label(d1), labeler.label(d2), mf_label)
        for d1, d2 in pairs
    ]
    assert engine.depends_batch(pairs, view, variant=MATRIX_FREE) == expected
    assert engine.depends_batch(pairs, view, variant=FVLVariant.DEFAULT) == expected


def test_views_resolvable_by_name(engine, derivation):
    view = VIEWS[0]
    engine.add_view(view)
    pairs = _visible_pairs(derivation, view)
    assert engine.depends_batch(pairs, view.name, run=DEFAULT_RUN) == engine.depends_batch(
        pairs, view
    )
    assert view.name in engine.view_names


# -- cache accounting and LRU eviction -------------------------------------------------


def test_cache_hit_miss_accounting(engine, derivation):
    view = VIEWS[0]
    pairs = _visible_pairs(derivation, view)
    assert engine.stats.views.hits == engine.stats.views.misses == 0
    engine.depends_batch(pairs, view)
    stats = engine.stats.views
    assert (stats.hits, stats.misses) == (0, 1)
    engine.depends_batch(pairs, view)
    stats = engine.stats.views
    assert (stats.hits, stats.misses) == (1, 1)
    engine.depends_batch(pairs, view, variant=FVLVariant.SPACE_EFFICIENT)
    stats = engine.stats.views
    assert (stats.hits, stats.misses) == (1, 2)
    assert 0 < stats.hit_rate < 1
    assert stats.size == 2


def test_lru_eviction(derivation):
    engine = QueryEngine(SCHEME, cache_size=1)
    engine.add_run(DEFAULT_RUN, derivation)
    view_a, view_b = VIEWS[0], VIEWS[1]
    pairs_a = _visible_pairs(derivation, view_a)
    pairs_b = _visible_pairs(derivation, view_b)
    engine.depends_batch(pairs_a, view_a)
    engine.depends_batch(pairs_b, view_b)  # evicts view_a's state
    stats = engine.stats.views
    assert stats.evictions == 1 and stats.size == 1
    engine.depends_batch(pairs_a, view_a)  # rebuilt: a second miss, not a hit
    stats = engine.stats.views
    assert (stats.hits, stats.misses, stats.evictions) == (0, 3, 2)


def test_cache_size_must_be_positive():
    with pytest.raises(ValueError):
        QueryEngine(SCHEME, cache_size=0)


def test_decode_cache_entries_are_bounded(derivation):
    bounded = QueryEngine(SCHEME, cache_size=4, decode_cache_entries=4)
    bounded.add_run(DEFAULT_RUN, derivation)
    view = VIEWS[1]
    pairs = _visible_pairs(derivation, view, n=80)
    labeler = bounded.run_labeler()
    expected = _expected(derivation, labeler, pairs, view)
    assert bounded.depends_batch(pairs, view) == expected
    state = bounded._decoded_state(view, None)
    assert len(state.decode_cache) <= 4
    # A saturated cache only stops storing; answers stay correct.
    assert bounded.depends_batch(pairs, view) == expected


# -- multi-run sharding ---------------------------------------------------------------


def test_depends_many_shards_across_runs(engine, derivation):
    other = random_run(SPEC, 150, seed=11)
    engine.add_run("other", other)
    view = VIEWS[1]
    pairs_a = _visible_pairs(derivation, view, seed=1)
    pairs_b = _visible_pairs(other, view, seed=2)
    queries = [DependsQuery(d1, d2, view, run=DEFAULT_RUN) for d1, d2 in pairs_a]
    queries += [DependsQuery(d1, d2, view, run="other") for d1, d2 in pairs_b]
    random.Random(0).shuffle(queries)
    answers = engine.depends_many(queries)
    for query, answer in zip(queries, answers):
        assert answer == engine.depends(query.d1, query.d2, view, run=query.run)
    stats = engine.stats
    assert set(stats.queries_by_run) == {DEFAULT_RUN, "other"}
    assert stats.queries_by_run["other"] >= len(pairs_b)


def test_depends_many_accepts_tuples(engine, derivation):
    view = VIEWS[0]
    pairs = _visible_pairs(derivation, view)
    as_tuples = engine.depends_many([(d1, d2, view) for d1, d2 in pairs])
    assert as_tuples == engine.depends_batch(pairs, view)


def test_run_ids_and_duplicate_run_rejected(engine, derivation):
    assert engine.run_ids == (DEFAULT_RUN,)
    with pytest.raises(LabelingError):
        engine.add_run(DEFAULT_RUN, random_run(SPEC, 60, seed=4))


# -- concurrent access ------------------------------------------------------------------


def test_concurrent_batches_agree_with_serial(derivation):
    # A small cache forces eviction churn while 8 threads hammer 3 views.
    engine = QueryEngine(SCHEME, cache_size=2)
    engine.add_run(DEFAULT_RUN, derivation)
    labeler = engine.run_labeler()
    workload = []
    for index, view in enumerate(VIEWS):
        pairs = _visible_pairs(derivation, view, n=30, seed=index)
        workload.append((view, pairs, _expected(derivation, labeler, pairs, view)))

    def worker(thread_id: int):
        view, pairs, expected = workload[thread_id % len(workload)]
        return engine.depends_batch(pairs, view) == expected

    with ThreadPoolExecutor(max_workers=8) as pool:
        outcomes = list(pool.map(worker, range(24)))
    assert all(outcomes)
    stats = engine.stats
    assert stats.queries == 24 * 30 and stats.batches == 24


def test_depends_many_concurrent_runs_use_executor(derivation):
    engine = QueryEngine(SCHEME, cache_size=4, max_workers=2)
    runs = {
        f"run-{i}": random_run(SPEC, 100, seed=20 + i) for i in range(3)
    }
    for run_id, run_derivation in runs.items():
        engine.add_run(run_id, run_derivation)
    view = VIEWS[0]
    queries, expected = [], []
    for run_id, run_derivation in runs.items():
        for d1, d2 in _visible_pairs(run_derivation, view, n=20, seed=7):
            queries.append(DependsQuery(d1, d2, view, run=run_id))
    answers = engine.depends_many(queries)
    for query, answer in zip(queries, answers):
        assert answer == engine.depends(query.d1, query.d2, view, run=query.run)


# -- error paths --------------------------------------------------------------------------


def test_unknown_run_id_raises(engine):
    with pytest.raises(LabelingError, match="no run 'missing'"):
        engine.depends_batch([(1, 2)], VIEWS[0], run="missing")


def test_unknown_view_name_raises(engine):
    with pytest.raises(ViewError, match="unknown view"):
        engine.depends_batch([(1, 2)], "not-registered")


def test_conflicting_view_name_raises(engine):
    engine.add_view(VIEWS[0])
    clone = random_view(SPEC, 2, seed=9, mode="grey", name=VIEWS[0].name)
    with pytest.raises(ViewError, match="already registered"):
        engine.add_view(clone)


def test_structurally_identical_view_reregisters_cleanly(engine, derivation):
    # Callers may rebuild their view object per request; same name + same
    # structure must keep working (and keep hitting the cached decode state).
    from repro.model import WorkflowView

    original = VIEWS[0]
    rebuilt = WorkflowView(
        original.visible_composites, original.dependencies, name=original.name
    )
    pairs = _visible_pairs(derivation, original)
    first = engine.depends_batch(pairs, original)
    assert engine.depends_batch(pairs, rebuilt) == first
    assert engine.stats.views.hits >= 1


def test_unsafe_view_raises():
    grammar, dependencies = build_unsafe_example()
    spec = WorkflowSpecification(grammar, dependencies)
    engine = QueryEngine(spec)
    from repro.model import Derivation

    engine.add_run(DEFAULT_RUN, Derivation(spec))
    with pytest.raises(UnsafeWorkflowError):
        engine.depends_batch([(1, 2)], default_view(spec))


def test_unknown_variant_raises(engine):
    with pytest.raises(DecodingError, match="unknown labeling variant"):
        engine.depends_batch([(1, 2)], VIEWS[0], variant="turbo")


def test_malformed_query_raises(engine):
    with pytest.raises(DecodingError, match="depends query"):
        engine.depends_many([(1, 2)])
