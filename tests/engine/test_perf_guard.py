"""Guards against reintroducing the space-efficient variant's 40x query cliff.

Before the engine, the space-efficient variant re-ran a graph search over a
production body on *every* matrix access of *every* query, leaving it 30-40x
slower than the materialised variants (see
``benchmarks/test_fig20_query_time.py``).  Two non-benchmark checks keep that
from coming back:

* a structural one — a cached batch performs at most one graph search per
  retained production, counted by instrumenting the search itself (no timing
  involved, so no flakiness);
* a timing ratio — the warm batched space-efficient path stays within a
  generous constant factor of the warm default path (the regression being
  guarded against is a >25x cliff, so the bound has plenty of headroom).
"""

from __future__ import annotations

import time

import pytest

from repro import FVLScheme, FVLVariant, QueryEngine
from repro.core.view_label import ViewLabel
from repro.engine import DEFAULT_RUN
from repro.model.projection import ViewProjection
from repro.workloads import build_bioaid_specification, random_run, random_view

from repro.bench import sample_query_pairs


@pytest.fixture(scope="module")
def setup():
    spec = build_bioaid_specification()
    scheme = FVLScheme(spec)
    derivation = random_run(spec, 400, seed=9)
    view = random_view(spec, 8, seed=3, mode="grey", name="guard-view")
    items = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(items, 300, seed=1)
    return scheme, derivation, view, pairs


def _fresh_engine(scheme, derivation) -> QueryEngine:
    engine = QueryEngine(scheme)
    engine.add_run(DEFAULT_RUN, derivation)
    return engine


def test_batch_runs_one_graph_search_per_production(setup, monkeypatch):
    scheme, derivation, view, pairs = setup
    searches = []
    original = ViewLabel._compute_production_matrices

    def counting(self, k):
        searches.append(k)
        return original(self, k)

    monkeypatch.setattr(ViewLabel, "_compute_production_matrices", counting)
    engine = _fresh_engine(scheme, derivation)
    engine.depends_batch(pairs, view, variant=FVLVariant.SPACE_EFFICIENT)
    retained = scheme.label_view(view, FVLVariant.SPACE_EFFICIENT).retained_productions
    assert searches, "the batch never exercised the space-efficient decode path"
    assert len(searches) <= len(retained), (
        f"{len(searches)} graph searches for {len(retained)} retained productions: "
        "the per-production memo is not being hit"
    )
    # A second batch over the warm engine must not search at all.
    searches.clear()
    engine.depends_batch(pairs, view, variant=FVLVariant.SPACE_EFFICIENT)
    assert searches == []


def test_space_efficient_batch_within_constant_factor_of_default(setup):
    scheme, derivation, view, pairs = setup
    engine = _fresh_engine(scheme, derivation)

    def best_of(variant, repeats=5) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            engine.depends_batch(pairs, view, variant=variant)
            best = min(best, time.perf_counter() - start)
        return best

    # Warm both decode states so only the steady-state batch path is timed.
    default_answers = engine.depends_batch(pairs, view, variant=FVLVariant.DEFAULT)
    space_answers = engine.depends_batch(
        pairs, view, variant=FVLVariant.SPACE_EFFICIENT
    )
    assert space_answers == default_answers
    default_time = best_of(FVLVariant.DEFAULT)
    space_time = best_of(FVLVariant.SPACE_EFFICIENT)
    # Warm, both paths do identical memoized work; 10x plus an absolute slack
    # for scheduler noise is far below the >25x cliff this test guards against.
    assert space_time <= 10 * default_time + 0.010, (
        f"space-efficient batch took {space_time * 1e3:.2f} ms vs "
        f"{default_time * 1e3:.2f} ms for the default variant"
    )
