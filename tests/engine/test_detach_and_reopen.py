"""Engine tests for shard lifecycle: detach hygiene, hot reopen, chunked gather."""

from __future__ import annotations

import numpy as np
import pytest

import repro.engine.engine as engine_module
from repro.core import FVLScheme, FVLVariant
from repro.core.run_labeler import RunLabeler
from repro.engine import DEFAULT_RUN, QueryEngine
from repro.errors import LabelingError
from repro.model.projection import ViewProjection
from repro.store import checkpoint_run, compact
from repro.store.persist import _ChunkedColumn
from repro.bench import sample_query_pairs
from repro.workloads import build_bioaid_specification, random_run, random_view


@pytest.fixture(scope="module")
def spec():
    return build_bioaid_specification()


@pytest.fixture(scope="module")
def scheme(spec):
    return FVLScheme(spec)


@pytest.fixture()
def served(scheme, spec, tmp_path):
    derivation = random_run(spec, 300, seed=41)
    view = random_view(spec, 6, seed=4, mode="grey", name="shard-view")
    items = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(items, 300, seed=6)
    engine = QueryEngine(scheme)
    engine.add_run(DEFAULT_RUN, derivation)
    run_file = tmp_path / "shard.fvl"
    engine.checkpoint(run_file)
    return engine, derivation, view, pairs, run_file


def _pair_matrix_arenas(engine):
    arenas = set()
    for state in engine._states.values():
        cache = getattr(state, "decode_cache", None)
        if cache is None:
            continue
        for key in cache.pair_matrices:
            if len(key) == 3:
                arenas.add(key[0])
    return arenas


# -- detach --------------------------------------------------------------------


def test_detach_drops_private_arena_decode_entries(served):
    engine, _, view, pairs, run_file = served
    engine.attach(run_file, run_id="disk")
    expected = engine.depends_batch(pairs, view, variant=FVLVariant.DEFAULT)
    assert engine.depends_batch(pairs, view, run="disk") == expected
    arena = engine._shards["disk"].arena
    assert arena in _pair_matrix_arenas(engine)

    engine.detach("disk")
    assert "disk" not in engine.run_ids
    assert arena not in _pair_matrix_arenas(engine)
    # The shared (arena 0) entries of the labelled shard survive.
    assert 0 in _pair_matrix_arenas(engine)
    with pytest.raises(LabelingError):
        engine.depends_batch(pairs, view, run="disk")
    # The name is reusable, and the fresh attachment gets a fresh arena.
    engine.attach(run_file, run_id="disk")
    assert engine._shards["disk"].arena != arena
    assert engine.depends_batch(pairs, view, run="disk") == expected


def test_detach_labelled_shard_only_unregisters(served):
    engine, _, view, pairs, _ = served
    engine.depends_batch(pairs, view)
    assert 0 in _pair_matrix_arenas(engine)
    engine.detach(DEFAULT_RUN)
    assert DEFAULT_RUN not in engine.run_ids
    assert 0 in _pair_matrix_arenas(engine)  # shared arena is never purged
    with pytest.raises(LabelingError):
        engine.detach(DEFAULT_RUN)


def test_detach_releases_the_mapping(served, tmp_path):
    engine, _, view, pairs, run_file = served
    engine.attach(run_file, run_id="disk")
    shard = engine._shards["disk"]
    engine.detach("disk")
    # detach closed the store (column views pin the pages only until they
    # are collected — the engine holds no reference anymore) and the file
    # handle is gone; a fresh attachment under another name still serves.
    assert shard.mapped._file.closed
    engine.attach(run_file, run_id="again")
    assert engine.depends_batch(pairs, view, run="again") == engine.depends_batch(
        pairs, view
    )


def test_attach_under_a_registered_run_id_is_rejected_not_replaced(served):
    """Regression: re-attaching a live run id must not leak the old mapping."""
    engine, _, view, pairs, run_file = served
    engine.attach(run_file, run_id="dup")
    live = engine._shards["dup"]
    expected = engine.depends_batch(pairs, view, run="dup")
    with pytest.raises(LabelingError, match="already registered.*detach"):
        engine.attach(run_file, run_id="dup")
    # The live shard was neither replaced nor closed — same mapping, same
    # arena, still serving — and no second mapping of the file leaked.
    assert engine._shards["dup"] is live
    assert not live.mapped._file.closed
    assert engine.depends_batch(pairs, view, run="dup") == expected
    engine.detach("dup")


# -- reopen --------------------------------------------------------------------


def test_reopen_all_matches_path_spellings(scheme, spec, tmp_path, monkeypatch):
    """A shard attached under a relative alias of the compacted path remaps too."""
    derivation = random_run(spec, 150, seed=44)
    labeler = RunLabeler(scheme.index)
    run_file = tmp_path / "alias.fvl"
    events = derivation.events
    half = len(events) // 2
    for event in events[:half]:
        labeler(event)
    checkpoint_run(run_file, labeler.store, labeler.tree.nodes)
    for event in events[half:]:
        labeler(event)
    checkpoint_run(run_file, labeler.store, labeler.tree.nodes)

    engine = QueryEngine(scheme)
    monkeypatch.chdir(tmp_path)
    engine.attach("alias.fvl", run_id="disk")  # relative spelling
    assert compact(run_file).compacted
    assert engine.reopen_all(run_file) == ["disk"]  # absolute spelling
    assert engine._shards["disk"].mapped.generation == 1


def test_is_visible_batch_memoizes_trie_flags(served):
    engine, derivation, view, _, _ = served
    uids = list(range(1, derivation.run.n_data_items + 1))
    first = engine.is_visible_batch(uids, view)
    state = engine._decoded_state(view, None)
    flags = state.visibility_flags[0]
    # Repeat queries reuse (the very same) flags array instead of re-folding
    # the trie; growth would extend it, not rebuild it.
    assert engine.is_visible_batch(uids, view) == first
    assert state.visibility_flags[0] is flags


def test_reopen_noop_without_a_new_generation(served):
    engine, _, _, _, run_file = served
    engine.attach(run_file, run_id="disk")
    assert engine.reopen("disk") is False
    with pytest.raises(LabelingError, match="labelled"):
        engine.reopen(DEFAULT_RUN)


def test_reopen_preserves_decode_cache_and_answers(scheme, spec, tmp_path):
    derivation = random_run(spec, 300, seed=42)
    view = random_view(spec, 6, seed=8, mode="grey", name="reopen-view")
    items = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(items, 300, seed=9)
    run_file = tmp_path / "reopen.fvl"

    labeler = RunLabeler(scheme.index)
    events = derivation.events
    step = max(1, len(events) // 4)
    for lo in range(0, len(events), step):
        for event in events[lo : lo + step]:
            labeler(event)
        checkpoint_run(run_file, labeler.store, labeler.tree.nodes)

    reference = QueryEngine(scheme)
    reference.add_run(DEFAULT_RUN, derivation)
    expected = reference.depends_batch(pairs, view, variant=FVLVariant.DEFAULT)

    engine = QueryEngine(scheme)
    engine.attach(run_file, run_id="disk")
    assert engine.depends_batch(pairs, view, run="disk") == expected
    arenas_before = _pair_matrix_arenas(engine)

    assert compact(run_file).compacted
    assert engine.reopen_all() == ["disk"]
    # Same arena tag, same cached matrices — the remap did not cold-start.
    assert _pair_matrix_arenas(engine) == arenas_before
    assert engine._shards["disk"].mapped.generation == 1
    assert engine.depends_batch(pairs, view, run="disk") == expected
    # Generation unchanged now: the sweep is a no-op.
    assert engine.reopen_all(run_file) == []


# -- chunked gather ------------------------------------------------------------


def test_chunked_column_gather_matches_concatenated():
    chunks = [
        np.arange(0, 7, dtype=np.int32),
        np.arange(7, 19, dtype=np.int32),
        np.arange(19, 24, dtype=np.int32),
    ]
    column = _ChunkedColumn([0, 7, 19], list(chunks))
    rng = np.random.default_rng(0)
    rows = rng.integers(0, 24, size=1000)
    flat = column.concatenated()
    for chunk in (0, 1, 3, 64, 10_000):
        assert np.array_equal(column.gather(rows, chunk=chunk), flat[rows])
    assert column.gather(np.empty(0, dtype=np.int64)).size == 0


def test_vectorised_batches_over_multi_segment_mapped_shards(
    scheme, spec, tmp_path, monkeypatch
):
    """The chunked gather serves the vector path on multi-extent columns."""
    derivation = random_run(spec, 300, seed=43)
    view = random_view(spec, 6, seed=10, mode="grey", name="gather-view")
    items = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(items, 500, seed=11)
    run_file = tmp_path / "gather.fvl"
    labeler = RunLabeler(scheme.index)
    events = derivation.events
    step = max(1, len(events) // 4)
    for lo in range(0, len(events), step):
        for event in events[lo : lo + step]:
            labeler(event)
        checkpoint_run(run_file, labeler.store, labeler.tree.nodes)

    reference = QueryEngine(scheme)
    reference.add_run(DEFAULT_RUN, derivation)
    expected = reference.depends_batch(pairs, view, variant=FVLVariant.DEFAULT)

    engine = QueryEngine(scheme)
    mapped = engine.attach(run_file)
    assert max(mapped.extents_per_column().values()) >= 3
    monkeypatch.setattr(engine_module, "VECTOR_GROUP_THRESHOLD", 1)
    assert engine.depends_batch(pairs, view, variant=FVLVariant.DEFAULT) == expected
    # The gather never materialised whole columns on the mapped store.
    assert mapped.store._producer_path._flat is None
