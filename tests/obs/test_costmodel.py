"""Cost attribution: self-time folding, queue wait, top groups, bounds."""

from __future__ import annotations

import pytest

from repro.obs.costmodel import PHASE_BY_SPAN, CostModel
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Trace


def stamped(trace, name, parent=None, *, t0, wall, cpu=None, attrs=None):
    span = trace.begin_span(name, parent.span_id if parent else None, attrs)
    span.t0 = t0
    span.wall_s = wall
    span.cpu_s = wall if cpu is None else cpu
    return span


def make_trace():
    """net.frame(1.0s) > scheduler.batch(0.8s) > engine spans, queued 0.2s."""
    trace = Trace(7)
    root = stamped(trace, "net.frame", t0=0.0, wall=1.0, cpu=-1.0)
    sched = stamped(trace, "scheduler.batch", root, t0=0.2, wall=0.8)
    eng = stamped(trace, "engine.depends_batch", sched, t0=0.3, wall=0.5)
    stamped(
        trace, "engine.group_eval", eng, t0=0.35, wall=0.2,
        attrs={"structural_pairs": 3, "matrix_pairs": 1},
    )
    return trace


def phase_walls(model):
    return {row["phase"]: row["wall_s"] for row in model.table()}


def test_self_time_folding_never_double_bills_nested_phases():
    model = CostModel()
    model.record(make_trace(), run="r", view="v", queries=4)
    walls = phase_walls(model)
    assert walls["net"] == pytest.approx(0.2)        # 1.0 - 0.8 child
    assert walls["scheduler"] == pytest.approx(0.3)  # 0.8 - 0.5 child
    # depends_batch self (0.3) + group_eval leaf (0.2) share the phase.
    assert walls["engine"] == pytest.approx(0.5)
    assert walls["queue_wait"] == pytest.approx(0.2)  # sched.t0 - root.t0
    assert sum(walls.values()) == pytest.approx(1.2)


def test_top_groups_carry_per_query_cost_and_structural_split():
    model = CostModel()
    model.record(make_trace(), run="r", view="v", queries=4)
    [group] = model.top_groups()
    assert (group["run"], group["view"], group["variant"]) == ("r", "v", "None")
    assert group["wall_s"] == pytest.approx(1.2)
    assert group["queries"] == 4
    assert group["wall_per_query_us"] == pytest.approx(1.2 / 4 * 1e6)
    # queue_wait never wins dominance: the engine's 0.5s does.
    assert group["dominant_phase"] == "engine"
    assert (group["structural_pairs"], group["matrix_pairs"]) == (3, 1)


def test_unknown_span_names_bill_to_their_dotted_prefix():
    assert "store.flush" not in PHASE_BY_SPAN
    trace = Trace(1)
    stamped(trace, "store.flush", t0=0.0, wall=0.5)
    model = CostModel()
    model.record(trace, run="r", view="v")
    assert phase_walls(model) == {"store": pytest.approx(0.5)}


def test_unfinished_spans_are_not_billed():
    trace = Trace(1)
    trace.begin_span("net.frame")  # never finished: wall_s stays -1.0
    model = CostModel()
    model.record(trace, run="r", view="v")
    assert model.table() == []
    model.record(Trace(2), run="r", view="v")  # empty trace: a no-op
    assert model.table() == []


def test_table_is_key_bounded_and_counts_overflow():
    model = CostModel(max_keys=1)
    trace = Trace(1)
    stamped(trace, "net.frame", t0=0.0, wall=0.5)
    stamped(trace, "engine.decode", t0=0.1, wall=0.1)
    model.record(trace, run="r", view="v")
    assert len(model.table()) == 1
    assert model.overflowed == 1


def test_totals_mirror_into_registry_counters():
    reg = MetricsRegistry()
    model = CostModel(reg)
    model.record(make_trace(), run="r", view="v", queries=4)
    snap = reg.snapshot()["cost_seconds_total"]
    assert snap[("r", "v", "None", "net")] == pytest.approx(0.2)
    assert snap[("r", "v", "None", "engine")] == pytest.approx(0.5)
    cpu = reg.snapshot()["cost_cpu_seconds_total"]
    # The cross-thread root span reported cpu_s = -1.0, so "net" billed no
    # CPU; the same-thread engine spans billed their self CPU times.
    assert cpu[("r", "v", "None", "net")] == pytest.approx(0.0)
    assert cpu[("r", "v", "None", "engine")] == pytest.approx(0.5)
