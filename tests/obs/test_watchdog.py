"""Watchdog: SLO evaluation, alert hysteresis, health verdicts, anomaly bands."""

from __future__ import annotations

import pytest

from repro.obs import events as obs_events
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import SnapshotRing
from repro.obs.watchdog import SLO, Watchdog, default_slos


class ManualClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


@pytest.fixture()
def emitted(monkeypatch):
    events: list[tuple[str, dict]] = []
    monkeypatch.setattr(
        obs_events, "emit", lambda event, **fields: events.append((event, fields))
    )
    return events


def make_watchdog(slos, registry=None):
    registry = registry if registry is not None else MetricsRegistry()
    clock = ManualClock()
    dog = Watchdog(
        registry, slos, ring=SnapshotRing(clock=clock), clock=clock
    )
    return registry, clock, dog


def test_slo_spec_is_validated():
    with pytest.raises(ValueError):
        SLO("x", "median", "m_total")  # unknown kind
    with pytest.raises(ValueError):
        SLO("x", "rate", "m_total", clear_after=0)
    with pytest.raises(ValueError):
        SLO("x", "percentile", "m_total", q=1.5)
    with pytest.raises(ValueError):
        make_watchdog([SLO("dup", "rate", "a_total"), SLO("dup", "rate", "b_total")])
    names = [slo.name for slo in default_slos()]
    assert names == ["p99_latency", "error_rate", "shed_rate", "corruption"]


def test_rate_slo_fires_once_and_clears_with_hysteresis(emitted):
    slo = SLO("shed_rate", "rate", "sheds_total", threshold=1.0,
              window_s=2.0, clear_after=2)
    reg, clock, dog = make_watchdog([slo])
    sheds = reg.counter("sheds_total")

    dog.tick()  # single snapshot: no window yet, healthy
    assert dog.health()["status"] == "ok"

    clock.t = 1.0
    sheds.inc(10)  # 10 sheds in 1s >> 1/s
    report = dog.tick()
    assert report["shed_rate"]["breached"] and report["shed_rate"]["firing"]
    health = dog.health()
    assert health["status"] == "degraded"
    [alert] = health["alerts"]
    assert alert["slo"] == "shed_rate" and alert["threshold"] == 1.0
    assert dog.firing() == ["shed_rate"]

    clock.t = 1.5
    sheds.inc(10)  # still breaching: no second alert event
    dog.tick()

    # Quiet ticks outside the window: the first is not enough to clear ...
    clock.t = 4.0
    dog.tick()
    assert dog.health()["status"] == "degraded"
    # ... the second consecutive healthy tick is.
    clock.t = 5.0
    dog.tick()
    assert dog.health()["status"] == "ok"

    kinds = [event for event, _ in emitted]
    assert kinds == ["alert", "alert_clear"]
    assert emitted[0][1]["slo"] == "shed_rate"
    assert emitted[1][1]["breached_for_s"] == pytest.approx(4.0)
    snap = reg.snapshot()
    assert snap["watchdog_alerts_total"][("shed_rate",)] == 1
    assert snap["watchdog_alerts_firing"][()] == 0.0
    assert snap["watchdog_ticks_total"][()] == 5


def test_delta_slo_zero_threshold_flags_any_corruption(emitted):
    slo = SLO("corruption", "delta", "corruption_detected_total",
              threshold=0.0, window_s=10.0)
    reg, clock, dog = make_watchdog([slo])
    family = reg.counter("corruption_detected_total", "", ("layer",))
    dog.tick()
    clock.t = 1.0
    dog.tick()
    assert dog.health()["status"] == "ok"
    family.labels("engine").inc()
    clock.t = 2.0
    report = dog.tick()
    assert report["corruption"]["breached"]
    assert [event for event, _ in emitted] == ["alert"]


def test_value_slo_reads_the_latest_gauge():
    slo = SLO("queue", "value", "depth", threshold=5.0)
    reg, clock, dog = make_watchdog([slo])
    depth = reg.gauge("depth")
    depth.set(3)
    dog.tick()
    assert dog.health()["status"] == "ok"
    depth.set(9)
    clock.t = 1.0
    dog.tick()
    assert dog.health()["status"] == "degraded"


def test_percentile_slo_windows_the_latency_histogram():
    slo = SLO("p99", "percentile", "lat_seconds", threshold=0.05,
              q=0.99, window_s=10.0)
    reg, clock, dog = make_watchdog([slo])
    hist = reg.histogram("lat_seconds", buckets=(0.01, 0.1, 1.0))
    for _ in range(100):
        hist.observe(0.005)
    dog.tick()
    clock.t = 1.0
    dog.tick()
    assert dog.health()["status"] == "ok"
    for _ in range(10):
        hist.observe(0.5)  # the window's p99 jumps to the 1.0 edge
    clock.t = 2.0
    report = dog.tick()
    assert report["p99"]["value"] == pytest.approx(1.0)
    assert dog.health()["status"] == "degraded"


def test_anomaly_slo_learns_the_baseline_but_not_the_storm():
    slo = SLO("spike", "anomaly", "x_total", window_s=2.0, k=4.0)
    reg, clock, dog = make_watchdog([slo])
    counter = reg.counter("x_total")
    for tick in range(8):  # a steady ~1/s with mild jitter to keep std > 0
        clock.t = float(tick)
        counter.inc(1 + (tick % 2))
        report = dog.tick()
        assert not report["spike"]["breached"]
    clock.t = 8.0
    counter.inc(500)
    report = dog.tick()
    assert report["spike"]["breached"]
    # The storm sample was not learned: once the window drains, the band
    # is still the quiet baseline and healthy traffic stays healthy.
    clock.t = 12.0
    dog.tick()
    clock.t = 13.0
    counter.inc(1)
    report = dog.tick()
    assert not report["spike"]["breached"]


def test_background_loop_ticks_and_context_manager_stops():
    slo = SLO("noop", "value", "depth", threshold=1e9)
    reg = MetricsRegistry()
    with Watchdog(reg, [slo], interval_s=0.01) as dog:
        deadline = 200
        while reg.snapshot().get("watchdog_ticks_total", {}).get((), 0) < 2:
            deadline -= 1
            assert deadline > 0, "background loop never ticked"
            import time

            time.sleep(0.01)
    assert dog._thread is None
