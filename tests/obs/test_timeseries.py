"""Snapshot time series: quantile bounds, EWMA bands, windowed ring math."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import Ewma, SnapshotRing, percentile_from_counts

BUCKETS = (0.01, 0.1, 1.0)


def hist(counts, total=None):
    return {
        "counts": list(counts),
        "count": sum(counts) if total is None else total,
        "sum": 0.0,
        "buckets": BUCKETS,
    }


def test_percentile_from_counts_upper_and_lower_edges():
    counts = [90, 9, 1, 0]  # 90 fast, 9 medium, 1 slow, none in overflow
    assert percentile_from_counts(BUCKETS, counts, 0.50) == 0.01
    assert percentile_from_counts(BUCKETS, counts, 0.95) == 0.1
    assert percentile_from_counts(BUCKETS, counts, 1.0) == 1.0
    # The lower edge under-estimates: a p95 threshold of 0.01 cannot let a
    # true slowest-5% observation (>= 0.01) duck under it.
    assert percentile_from_counts(BUCKETS, counts, 0.95, lower=True) == 0.01
    assert percentile_from_counts(BUCKETS, counts, 0.50, lower=True) == 0.0


def test_percentile_from_counts_edge_cases():
    assert percentile_from_counts(BUCKETS, [0, 0, 0, 0], 0.99) == 0.0
    # A quantile landing in the +inf overflow slot clamps to the last edge.
    assert percentile_from_counts(BUCKETS, [0, 0, 0, 5], 0.99) == 1.0
    with pytest.raises(ValueError):
        percentile_from_counts(BUCKETS, [1, 0, 0, 0], 0.0)


def test_ewma_learns_mean_and_flags_spikes():
    ewma = Ewma(alpha=0.3)
    assert ewma.band() == (-float("inf"), float("inf"))
    for sample in (1.0, 1.2, 0.8, 1.1, 0.9, 1.0):
        ewma.update(sample)
    assert ewma.mean == pytest.approx(1.0, abs=0.2)
    assert not ewma.is_high(1.2, k=4.0)
    assert ewma.is_high(100.0, k=4.0)


def test_ewma_never_fires_before_min_count():
    ewma = Ewma()
    ewma.update(1.0)
    assert not ewma.is_high(1e9, min_count=3)
    with pytest.raises(ValueError):
        Ewma(alpha=0.0)


class ManualClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def ring_with(points):
    """A ring loaded with ``(ts, {name: {labels: value-or-hist}})`` pairs."""
    ring = SnapshotRing(clock=ManualClock())
    for ts, snap in points:
        ring.record_snapshot(snap, ts=ts)
    return ring


def test_ring_rate_uses_the_window_baseline():
    ring = ring_with([
        (0.0, {"sheds_total": {(): 0.0}}),
        (5.0, {"sheds_total": {(): 50.0}}),
        (10.0, {"sheds_total": {(): 50.0}}),
    ])
    # Full-history rate: 50 sheds over 10s.
    assert ring.rate("sheds_total") == pytest.approx(5.0)
    # A 5s window selects the t=5 snapshot as baseline: quiet since then.
    assert ring.rate("sheds_total", window_s=5.0) == pytest.approx(0.0)
    assert ring.value("sheds_total") == 50.0
    increase, elapsed = ring.delta("sheds_total", window_s=None)
    assert (increase, elapsed) == (50.0, 10.0)


def test_ring_sums_labeled_children_unless_one_is_selected():
    snap0 = {"errs_total": {("a",): 1.0, ("b",): 2.0}}
    snap1 = {"errs_total": {("a",): 4.0, ("b",): 2.0}}
    ring = ring_with([(0.0, snap0), (2.0, snap1)])
    assert ring.delta("errs_total")[0] == pytest.approx(3.0)
    assert ring.delta("errs_total", labels=("a",))[0] == pytest.approx(3.0)
    assert ring.delta("errs_total", labels=("b",))[0] == pytest.approx(0.0)
    assert ring.rate("missing_total") == 0.0


def test_ring_hist_delta_isolates_the_window_distribution():
    ring = ring_with([
        (0.0, {"lat": {(): hist([100, 0, 0, 0])}}),
        (1.0, {"lat": {(): hist([100, 0, 10, 0])}}),
    ])
    windowed = ring.hist_delta("lat")
    # Only the 10 slow observations arrived in the window, so the windowed
    # p50 lands in their bucket even though lifetime p50 is the fast one.
    assert windowed["counts"] == [0, 0, 10, 0]
    assert ring.percentile("lat", 0.5) == 1.0


def test_ring_percentile_falls_back_to_cumulative_when_idle():
    ring = ring_with([
        (0.0, {"lat": {(): hist([5, 0, 1, 0])}}),
        (1.0, {"lat": {(): hist([5, 0, 1, 0])}}),  # nothing new in window
    ])
    assert ring.percentile("lat", 0.5) == 0.01
    assert ring.percentile("lat", 1.0) == 1.0
    assert ring.percentile("missing", 0.5) == 0.0


def test_ring_hist_delta_survives_a_counter_reset():
    ring = ring_with([
        (0.0, {"lat": {(): hist([100, 0, 0, 0])}}),
        (1.0, {"lat": {(): hist([2, 1, 0, 0])}}),  # restarted process
    ])
    assert ring.hist_delta("lat")["counts"] == [2, 1, 0, 0]


def test_ring_records_live_registries_and_bounds_capacity():
    reg = MetricsRegistry()
    reg.counter("x_total").inc(3)
    ring = SnapshotRing(capacity=2)
    ring.record(reg)
    reg.counter("x_total").inc(1)
    ring.record(reg)
    ring.record(reg)
    assert len(ring) == 2
    assert ring.value("x_total") == 4.0
    with pytest.raises(ValueError):
        SnapshotRing(capacity=1)
