"""Allocation guard: obs state must stay bounded no matter how many queries run.

The ring of finished traces, the slow-query log, and the metrics registry
are the only obs structures that live past a request.  This guard drives a
100k-query workload (2 000 frames of 50 queries, every frame traced and
every trace slow — the worst case for both stores) and asserts that obs
memory is governed by its configured byte bounds, not by the query count:
the rings report within their caps and the process-level allocation growth
stays under a fixed budget.  If someone makes traces unbounded again, this
fails with numbers, not a slow leak in production.
"""

from __future__ import annotations

import tracemalloc

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, activate, trace_span

QUERIES = 100_000
FRAME = 50
RING_CAP = 256 << 10
SLOW_CAP = 256 << 10
#: Net allocation budget for the whole 100k-query run: both rings at their
#: caps, the registry's handful of families, and slack for allocator noise.
ALLOC_BUDGET = 2 << 20


def test_100k_query_run_keeps_obs_memory_within_budget():
    registry = MetricsRegistry()
    tracer = Tracer(
        sample_rate=1.0,  # worst case: every frame traced
        slow_threshold_s=0.0,  # worst case: every trace also filed slow
        ring_max_bytes=RING_CAP,
        slow_max_bytes=SLOW_CAP,
        ring_max_traces=10_000,
        slow_max_entries=10_000,
        metrics=registry,
    )
    queries_c = registry.counter("queries_total", "", ("op",)).labels("depends")
    batch_h = registry.histogram("batch_seconds", buckets=(0.001, 0.01, 0.1))

    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    try:
        for frame_no in range(QUERIES // FRAME):
            trace = tracer.begin(frame_no + 1)
            root = trace.begin_span("net.frame", attrs={"n": FRAME})
            with activate(trace, root.span_id):
                with trace_span("scheduler.batch", batch=frame_no):
                    with trace_span("engine.depends_batch", pairs=FRAME):
                        queries_c.inc(FRAME)
                        batch_h.observe(0.0005)
            root.finish()
            tracer.finish(trace)
        after, _ = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    assert queries_c.value == QUERIES
    # The stores honoured their byte bounds and evicted instead of growing.
    assert tracer.ring_bytes <= RING_CAP
    assert tracer.slow_bytes <= SLOW_CAP
    assert tracer.dropped_traces > 0
    assert tracer.dropped_slow > 0
    grew = after - before
    assert grew < ALLOC_BUDGET, (
        f"obs structures grew {grew / 1024:.0f} KiB over {QUERIES} queries; "
        f"budget is {ALLOC_BUDGET / 1024:.0f} KiB — a trace or slow-log "
        "bound has stopped being enforced"
    )
    # The registry never lies when traces rot: every query is still counted.
    snap = registry.snapshot()
    assert snap["trace_sampled_total"][()] == QUERIES // FRAME
    assert snap["queries_total"][("depends",)] == QUERIES
