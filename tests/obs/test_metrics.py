"""Unit tests for the metrics registry: families, snapshots, exposition."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    parse_exposition,
)


def test_counter_basics_and_monotonicity():
    reg = MetricsRegistry()
    c = reg.counter("requests_total", "requests seen")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_labeled_counter_children_are_independent():
    reg = MetricsRegistry()
    fam = reg.counter("queries_total", "queries", ("run", "op"))
    fam.labels("r1", "depends").inc(3)
    fam.labels("r1", "visible").inc()
    fam.labels("r2", "depends").inc(7)
    snap = reg.snapshot()["queries_total"]
    assert snap[("r1", "depends")] == 3
    assert snap[("r1", "visible")] == 1
    assert snap[("r2", "depends")] == 7


def test_label_arity_is_enforced():
    reg = MetricsRegistry()
    fam = reg.counter("x_total", "", ("a", "b"))
    with pytest.raises(ValueError):
        fam.labels("only-one")
    with pytest.raises(ValueError):
        fam.inc()  # label-less shortcut on a labeled family


def test_family_constructors_are_idempotent_but_typed():
    reg = MetricsRegistry()
    a = reg.counter("n_total", "first")
    b = reg.counter("n_total", "second declaration is merged")
    assert a is b
    with pytest.raises(ValueError):
        reg.gauge("n_total")
    with pytest.raises(ValueError):
        reg.counter("n_total", labelnames=("other",))


def test_gauge_set_inc_ratchet_and_callback():
    reg = MetricsRegistry()
    g = reg.gauge("depth")
    g.set(4.0)
    g.inc(2.0)
    assert g.value == 6.0
    g.set_max(5.0)
    assert g.value == 6.0
    g.set_max(9.0)
    assert g.value == 9.0
    live = {"n": 0}
    g.set_function(lambda: live["n"])
    live["n"] = 42
    assert g.value == 42.0
    assert reg.snapshot()["depth"][()] == 42.0


def test_histogram_observe_and_observe_many_agree():
    reg = MetricsRegistry()
    edges = (0.001, 0.01, 0.1, 1.0)
    loop = reg.histogram("lat_a", buckets=edges)
    batch = reg.histogram("lat_b", buckets=edges)
    values = [0.0005, 0.005, 0.005, 0.05, 0.5, 5.0]
    for v in values:
        loop.observe(v)
    batch.observe_many(np.asarray(values))
    snap = reg.snapshot()
    assert snap["lat_a"][()]["counts"] == snap["lat_b"][()]["counts"]
    assert snap["lat_a"][()]["count"] == len(values)
    assert snap["lat_a"][()]["sum"] == pytest.approx(sum(values))
    # One observation past the last edge lands in the +inf overflow slot.
    assert snap["lat_a"][()]["counts"][-1] == 1


def test_default_latency_buckets_are_log_spaced_and_sorted():
    assert LATENCY_BUCKETS == tuple(sorted(LATENCY_BUCKETS))
    assert LATENCY_BUCKETS[0] == pytest.approx(1e-5)
    assert LATENCY_BUCKETS[-1] > 10.0


def test_snapshot_is_atomic_across_families():
    """Paired counters bumped together never show a torn (a != b) snapshot."""
    reg = MetricsRegistry()
    # Materialise the children up front: ._solo lazily creates a child
    # under the registry lock, which the writer below already holds.
    a = reg.counter("a_total")._solo
    b = reg.counter("b_total")._solo
    stop = threading.Event()

    def writer():
        while not stop.is_set():
            # One lock acquisition covers both increments.
            with reg._lock:
                a.value += 1
                b.value += 1

    thread = threading.Thread(target=writer, daemon=True)
    thread.start()
    try:
        for _ in range(300):
            snap = reg.snapshot()
            assert snap["a_total"].get((), 0) == snap["b_total"].get((), 0)
    finally:
        stop.set()
        thread.join()


def test_exposition_round_trips_through_parser():
    reg = MetricsRegistry()
    reg.counter("frames_total", "frames", ("op",)).labels("depends").inc(11)
    reg.gauge("queue_depth", "queued requests").set(3)
    reg.histogram("batch_seconds", buckets=(0.1, 1.0)).observe(0.5)
    text = reg.exposition()
    assert "# TYPE frames_total counter" in text
    assert "# HELP queue_depth queued requests" in text
    parsed = parse_exposition(text)
    assert parsed[("frames_total", (("op", "depends"),))] == 11
    assert parsed[("queue_depth", ())] == 3
    assert parsed[("batch_seconds_count", ())] == 1
    assert parsed[("batch_seconds_sum", ())] == pytest.approx(0.5)
    # Histogram buckets are cumulative and end at +Inf == count.
    inf_key = ("batch_seconds_bucket", (("le", "+Inf"),))
    assert parsed[inf_key] == 1


def test_observe_rejects_nan_negative_and_inf_without_poisoning():
    reg = MetricsRegistry()
    hist = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
    for bad in (float("nan"), -1.0, float("inf")):
        hist.observe(bad)
    hist.observe(0.5)
    snap = reg.snapshot()
    assert snap["lat_seconds"][()]["count"] == 1
    assert snap["lat_seconds"][()]["sum"] == pytest.approx(0.5)
    assert snap["observe_invalid_total"][("lat_seconds",)] == 3


def test_observe_many_guards_empty_and_mixed_batches():
    reg = MetricsRegistry()
    hist = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
    hist.observe_many(np.asarray([], dtype=np.float64))  # a no-op, not a crash
    hist.observe_many([0.05, float("nan"), -3.0, 0.5, float("inf")])
    snap = reg.snapshot()
    assert snap["lat_seconds"][()]["count"] == 2  # only the two valid values
    assert snap["lat_seconds"][()]["sum"] == pytest.approx(0.55)
    assert snap["observe_invalid_total"][("lat_seconds",)] == 3


def test_watermark_gauge_resets_on_snapshot_read():
    reg = MetricsRegistry()
    hwm = reg.gauge("queue_hwm", watermark=True)
    hwm.set_max(7)
    hwm.set_max(3)  # ratchet: lower values do not move it
    assert reg.snapshot()["queue_hwm"][()] == 7.0
    # The read consumed the watermark; the next burst starts from zero.
    assert reg.snapshot()["queue_hwm"][()] == 0.0
    hwm.set_max(2)
    assert reg.snapshot()["queue_hwm"][()] == 2.0
    with pytest.raises(ValueError):
        reg.gauge("queue_hwm", watermark=False)  # declaration must agree


def test_exemplars_ride_the_exposition_and_round_trip_the_parser():
    reg = MetricsRegistry()
    hist = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
    hist.observe(0.5)
    hist._solo.put_exemplar(0.5, 0xDEADBEEF)
    text = reg.exposition()
    assert ' # {trace_id="00000000deadbeef"} 0.5' in text
    parsed = parse_exposition(text)  # the suffix must not confuse parsing
    assert parsed[("lat_seconds_bucket", (("le", "1.0"),))] == 1
    assert parsed[("lat_seconds_count", ())] == 1


def test_exposition_quotes_awkward_label_values():
    reg = MetricsRegistry()
    reg.counter("odd_total", "", ("name",)).labels('run "a"\nb\\c').inc()
    parsed = parse_exposition(reg.exposition())
    [(key, value)] = [(k, v) for k, v in parsed.items() if k[0] == "odd_total"]
    assert value == 1
    assert key[1][0][0] == "name"
