"""Unit tests for tracing: sampling, span nesting, bounded rings, slow log."""

from __future__ import annotations

import json
import threading

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    Trace,
    TraceContext,
    Tracer,
    activate,
    current_trace,
    trace_span,
)


def _sampled_id(tracer: Tracer, start: int = 1) -> int:
    trace_id = start
    while not tracer.sampled(trace_id):
        trace_id += 1
    return trace_id


def _unsampled_id(tracer: Tracer, start: int = 1) -> int:
    trace_id = start
    while tracer.sampled(trace_id):
        trace_id += 1
    return trace_id


def test_sampling_is_deterministic_in_the_trace_id():
    tracer = Tracer(sample_rate=1.0 / 8.0)
    decisions = [tracer.sampled(i) for i in range(1, 2000)]
    assert decisions == [tracer.sampled(i) for i in range(1, 2000)]
    rate = sum(decisions) / len(decisions)
    assert 0.05 < rate < 0.25  # roughly 1/8, mixed well enough


def test_begin_respects_sampling_and_rate_zero():
    tracer = Tracer(sample_rate=0.5)
    assert tracer.begin(_unsampled_id(tracer)) is None
    assert tracer.begin(_sampled_id(tracer)) is not None
    assert Tracer(sample_rate=0.0).begin(123) is None
    assert Tracer(sample_rate=1.0).begin(123) is not None


def test_trace_span_nests_and_noops_without_active_trace():
    with trace_span("orphan") as span:
        assert span is None  # no active trace -> no-op
    trace = Trace(7)
    with activate(trace):
        with trace_span("outer", op="depends") as outer:
            with trace_span("inner") as inner:
                pass
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert outer.attrs == {"op": "depends"}
    assert outer.wall_s >= 0 and inner.wall_s >= 0
    [root] = trace.span_tree()
    assert root["name"] == "outer"
    assert [c["name"] for c in root["children"]] == ["inner"]


def test_span_tree_orders_siblings_deterministically_with_full_paths():
    trace = Trace(11)
    root = trace.begin_span("net.frame")
    first = trace.begin_span("scheduler.batch", root.span_id)
    second = trace.begin_span("scheduler.batch", root.span_id)
    leaf = trace.begin_span("engine.depends_batch", second.span_id)
    # Finish out of allocation order, as racing workers would.
    for span in (leaf, second, first, root):
        span.finish()
    [tree_root] = trace.span_tree()
    # Siblings come back in span-id (allocation) order, not finish order.
    assert [c["span_id"] for c in tree_root["children"]] == [
        first.span_id, second.span_id
    ]
    # Every node carries its slash-joined ancestor chain.
    assert tree_root["path"] == "net.frame"
    assert tree_root["children"][1]["path"] == "net.frame/scheduler.batch"
    nested = tree_root["children"][1]["children"][0]
    assert nested["path"] == "net.frame/scheduler.batch/engine.depends_batch"
    # The same tree (ids, paths) serialises identically on every walk.
    assert trace.span_tree() == trace.span_tree()


def test_slow_log_records_embed_parent_chains(tmp_path):
    tracer = Tracer(sample_rate=1.0, slow_threshold_s=0.0)
    trace = tracer.begin(5)
    root = trace.begin_span("net.frame")
    child = trace.begin_span("scheduler.batch", root.span_id)
    child.finish()
    root.finish()
    tracer.finish(trace)
    out = tmp_path / "slow.jsonl"
    assert tracer.dump_slow(out) == 1
    [record] = [json.loads(line) for line in out.read_text().splitlines()]
    [dumped_root] = record["spans"]
    assert dumped_root["path"] == "net.frame"
    assert dumped_root["children"][0]["path"] == "net.frame/scheduler.batch"


def test_trace_context_carries_across_threads():
    trace = Trace(9)
    root = trace.begin_span("net.frame")
    ctx = TraceContext(trace, root.span_id)
    seen = {}

    def worker():
        assert current_trace() is None  # contextvars do not follow threads
        with activate(ctx.trace, ctx.parent_id):
            with trace_span("scheduler.batch") as span:
                seen["parent"] = span.parent_id

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    root.finish()
    assert seen["parent"] == root.span_id


def test_span_budget_drops_instead_of_growing():
    trace = Trace(1, max_spans=4)
    for i in range(10):
        trace.begin_span(f"s{i}")
    assert len(trace.spans) == 4
    assert trace.dropped_spans == 6


def test_ring_is_bounded_by_entries_and_bytes():
    tracer = Tracer(sample_rate=1.0, ring_max_traces=8, ring_max_bytes=1 << 30)
    for i in range(1, 30):
        tracer.finish(tracer.begin(i))
    assert len(tracer.recent()) == 8
    assert tracer.dropped_traces == 21

    tiny = Tracer(sample_rate=1.0, ring_max_traces=10_000, ring_max_bytes=2_000)
    for i in range(1, 200):
        tiny.finish(tiny.begin(i))
    assert tiny.ring_bytes <= 2_000
    assert tiny.dropped_traces > 0


def test_slow_log_files_only_slow_traces_and_stays_bounded(tmp_path):
    tracer = Tracer(sample_rate=1.0, slow_threshold_s=0.0, slow_max_entries=5)
    for i in range(1, 20):
        trace = tracer.begin(i)
        span = trace.begin_span("net.frame")
        span.finish()
        tracer.finish(trace)
    slow = tracer.slow_queries()
    assert len(slow) == 5  # entry bound enforced, oldest dropped
    assert tracer.dropped_slow == 14
    assert all(entry["spans"][0]["name"] == "net.frame" for entry in slow)

    out = tmp_path / "slow.jsonl"
    assert tracer.dump_slow(out) == 5
    lines = out.read_text().splitlines()
    assert len(lines) == 5
    assert json.loads(lines[0])["trace_id"] in range(1, 20)

    fast = Tracer(sample_rate=1.0, slow_threshold_s=10.0)
    trace = fast.begin(1)
    trace.begin_span("quick").finish()
    fast.finish(trace)
    assert fast.slow_queries() == []


def test_tracer_registers_metrics_counters():
    reg = MetricsRegistry()
    tracer = Tracer(
        sample_rate=1.0, slow_threshold_s=0.0, ring_max_traces=2, metrics=reg
    )
    for i in range(1, 6):
        trace = tracer.begin(i)
        trace.begin_span("s").finish()
        tracer.finish(trace)
    snap = reg.snapshot()
    assert snap["trace_sampled_total"][()] == 5
    assert snap["trace_slow_total"][()] == 5
    assert snap["trace_dropped_total"][()] == 3
