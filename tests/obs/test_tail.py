"""Tail sampler: warmup keep-all, adaptive threshold, outcome keeps, ring."""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, parse_exposition
from repro.obs.tail import TailSampler
from repro.obs.trace import Trace

import pytest


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def make(reg=None, **kwargs):
    reg = reg if reg is not None else MetricsRegistry()
    clock = FakeClock()
    kwargs.setdefault("warmup", 8)
    kwargs.setdefault("refresh_every", 1)
    return reg, clock, TailSampler(reg, clock=clock, **kwargs)


def run_request(tail, clock, wall, **finish_kwargs):
    pending = tail.open(None, "depends", "v")
    clock.t += wall
    return pending, tail.finish(pending, **finish_kwargs)


def test_finish_returns_wall_and_tolerates_missing_pending():
    _reg, clock, tail = make()
    _pending, wall = run_request(tail, clock, 0.25)
    assert wall == pytest.approx(0.25)
    assert tail.finish(None) == -1.0


def test_warmup_keeps_everything_then_threshold_rises():
    reg, clock, tail = make()
    for _ in range(8):
        run_request(tail, clock, 0.004)
    # All warmup requests were kept (threshold 0 while learning) ...
    assert len(tail.kept()) == 8
    # ... and the adaptive threshold is now the p95 bucket's lower edge,
    # which sits under 4ms but far above a genuinely fast request.
    threshold = tail.threshold("depends", "v")
    assert 0.0 < threshold <= 0.004

    fast = run_request(tail, clock, threshold / 4)
    assert len(tail.kept()) == 8, fast  # dropped: fast and healthy
    slow_pending, _ = run_request(tail, clock, 1.0)
    kept = tail.kept()
    assert len(kept) == 9
    assert kept[-1]["reason"] == "slow"
    assert kept[-1]["trace_id"] == slow_pending.trace_id
    assert slow_pending.trace_id in tail.kept_ids()


def test_errors_and_sheds_are_kept_no_matter_how_fast():
    _reg, clock, tail = make()
    for _ in range(20):
        run_request(tail, clock, 0.004)
    before = len(tail.kept())
    run_request(tail, clock, 1e-6, error=True)
    run_request(tail, clock, 1e-6, shed=True)
    reasons = [record["reason"] for record in tail.kept()[before:]]
    assert reasons == ["error", "shed"]


def test_kept_request_stamps_an_exemplar_on_the_histogram():
    reg, clock, tail = make()
    pending, _ = run_request(tail, clock, 0.5, error=True)
    text = reg.exposition()
    want = format(pending.trace_id, "016x")
    assert f'trace_id="{want}"' in text
    # The exemplar suffix must not break the scrape parser.
    parsed = parse_exposition(text)
    assert parsed[("tail_considered_total", ())] == 1


def test_kept_ring_is_entry_bounded_and_counts_evictions():
    reg, clock, tail = make(ring_max_entries=4)
    pendings = [run_request(tail, clock, 1e-6, error=True)[0] for _ in range(10)]
    assert len(tail.kept()) == 4
    assert tail.kept_ids() == {p.trace_id for p in pendings[-4:]}
    snap = reg.snapshot()
    assert snap["tail_evicted_total"][()] == 6
    assert tail.ring_bytes > 0


def test_head_sampled_trace_rides_along_in_the_kept_record(tmp_path):
    _reg, clock, tail = make()
    trace = Trace(99)
    span = trace.begin_span("net.frame")
    span.finish()
    run_request(tail, clock, 0.5, error=True, trace=trace)
    [record] = tail.kept()
    assert record["spans"][0]["name"] == "net.frame"
    assert record["dropped_spans"] == 0
    out = tmp_path / "kept.jsonl"
    assert tail.dump(str(out)) == 1
    assert "net.frame" in out.read_text()


def test_constructor_validates_knobs():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        TailSampler(reg, percentile=1.0)
    with pytest.raises(ValueError):
        TailSampler(reg, warmup=0)
