"""Unit tests for the structured event log: emit, rotation, recovery reads."""

from __future__ import annotations

import json

import pytest

from repro.obs import events
from repro.obs.events import (
    EventLog,
    install_event_log,
    read_events,
    uninstall_event_log,
)


@pytest.fixture(autouse=True)
def _uninstalled():
    yield
    uninstall_event_log()


def test_emit_is_a_noop_until_installed(tmp_path):
    events.emit("checkpoint", run="r")  # must not raise, must not write
    assert list(tmp_path.iterdir()) == []


def test_install_routes_module_global_emit(tmp_path):
    log = install_event_log(EventLog(tmp_path / "events.jsonl"))
    events.emit("checkpoint", run="r1", items=10)
    events.emit("compaction", path="/x.fvl", generation=2)
    uninstall_event_log()
    events.emit("after-uninstall")  # dropped
    log.close()
    records = read_events(tmp_path / "events.jsonl")
    assert [r["event"] for r in records] == ["checkpoint", "compaction"]
    assert records[0]["run"] == "r1" and records[0]["items"] == 10
    assert all("ts" in r for r in records)
    assert log.emitted == 2


def test_unjsonable_fields_fall_back_to_repr(tmp_path):
    log = install_event_log(EventLog(tmp_path / "events.jsonl"))
    events.emit("fault", error=OSError("disk full"))
    log.close()
    [record] = read_events(tmp_path / "events.jsonl")
    assert "disk full" in record["error"]


def test_rotation_is_byte_bounded(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(path, max_bytes=400, max_files=3)
    for i in range(60):
        log.emit("tick", n=i, pad="x" * 40)
    log.close()
    assert path.exists()
    assert (tmp_path / "events.jsonl.1").exists()
    assert (tmp_path / "events.jsonl.2").exists()
    assert not (tmp_path / "events.jsonl.3").exists()  # oldest dropped
    for name in ("events.jsonl", "events.jsonl.1", "events.jsonl.2"):
        size = (tmp_path / name).stat().st_size
        # One oversized record may straddle the bound, never two.
        assert size < 400 + 120
    # The newest file holds the newest events.
    newest = read_events(path)
    assert newest[-1]["n"] == 59


def test_read_events_skips_torn_lines(tmp_path):
    path = tmp_path / "events.jsonl"
    with open(path, "w") as fh:
        fh.write(json.dumps({"ts": 1.0, "event": "good"}) + "\n")
        fh.write('{"ts": 2.0, "event": "torn-by-cra')  # no newline, no close
    records = read_events(path)
    assert [r["event"] for r in records] == ["good"]
    assert read_events(tmp_path / "missing.jsonl") == []
