"""Concurrency guarantees: snapshot atomicity, tracer ring accounting.

Eight writer threads is the contract's stress shape: enough to force real
interleaving on any CI box, small enough to finish in well under a second.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

N_THREADS = 8


def test_snapshot_never_tears_ordered_counter_pairs():
    """Each writer incs ``a`` then ``b``; a snapshot must never show b > a.

    ``snapshot()`` copies every family under the one registry lock, so the
    only legal skew is the <= N_THREADS increments that are between their
    ``a`` and ``b`` bumps at the instant the lock was taken.
    """
    reg = MetricsRegistry()
    a = reg.counter("a_total")
    b = reg.counter("b_total")
    stop = threading.Event()
    started = threading.Barrier(N_THREADS + 1)

    def writer():
        started.wait()
        while not stop.is_set():
            a.inc()
            b.inc()

    threads = [threading.Thread(target=writer, daemon=True) for _ in range(N_THREADS)]
    for thread in threads:
        thread.start()
    started.wait()
    try:
        for _ in range(400):
            snap = reg.snapshot()
            seen_a = snap["a_total"].get((), 0)
            seen_b = snap["b_total"].get((), 0)
            assert seen_b <= seen_a, (seen_a, seen_b)
            assert seen_a - seen_b <= N_THREADS, (seen_a, seen_b)
    finally:
        stop.set()
        for thread in threads:
            thread.join()


def test_tracer_ring_eviction_accounts_exactly_under_contention():
    """finished == kept + dropped, and ring bytes match the survivors."""
    per_thread = 200
    tracer = Tracer(sample_rate=1.0, slow_threshold_s=float("inf"),
                    ring_max_traces=32, metrics=MetricsRegistry())
    started = threading.Barrier(N_THREADS)

    def writer(base: int):
        started.wait()
        for n in range(per_thread):
            trace = tracer.begin(trace_id=base * per_thread + n + 1)
            assert trace is not None  # sample_rate 1.0 admits every id
            span = trace.begin_span("net.frame")
            span.finish()
            tracer.finish(trace)

    threads = [
        threading.Thread(target=writer, args=(i,), daemon=True)
        for i in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    kept = tracer.recent()
    finished = N_THREADS * per_thread
    assert len(kept) == 32
    assert tracer.dropped_traces == finished - len(kept)
    assert tracer.ring_bytes == sum(trace.nbytes() for trace in kept)
