"""Tests for the deterministic fault-injection harness (repro/faults.py)."""

from __future__ import annotations

import threading

import pytest

from repro import faults
from repro.faults import FAULT_POINTS, FaultPlan, InjectedFault


def test_disarmed_hit_is_a_noop():
    for point in FAULT_POINTS:
        faults.hit(point)  # never raises, records nothing


def test_unknown_point_is_rejected_at_build_time():
    with pytest.raises(ValueError, match="unknown fault point"):
        FaultPlan().on("persist.fzync")


def test_probability_is_validated():
    with pytest.raises(ValueError, match="probability"):
        FaultPlan().on("persist.fsync", probability=1.5)


def test_count_rule_fires_exactly_n_times():
    plan = FaultPlan().on("persist.fsync", count=2)
    with plan.armed():
        for expected_hit in (1, 2):
            with pytest.raises(InjectedFault) as info:
                faults.hit("persist.fsync")
            assert info.value.point == "persist.fsync"
            assert info.value.hit_number == expected_hit
        faults.hit("persist.fsync")  # exhausted: clean
    assert plan.hits("persist.fsync") == 3
    assert plan.fired("persist.fsync") == 2
    assert plan.fired() == 2


def test_after_window_skips_early_hits():
    plan = FaultPlan().on("net.send", after=3, count=1)
    with plan.armed():
        for _ in range(3):
            faults.hit("net.send")  # inside the clean window
        with pytest.raises(InjectedFault) as info:
            faults.hit("net.send")
        assert info.value.hit_number == 4
        faults.hit("net.send")  # count exhausted


def test_custom_error_is_raised_verbatim():
    boom = OSError("EIO: injected")
    plan = FaultPlan().on("compact.swap", error=boom)
    with plan.armed():
        with pytest.raises(OSError, match="EIO: injected"):
            faults.hit("compact.swap")


def test_probability_schedule_is_seed_deterministic():
    def schedule(seed: int) -> list[bool]:
        plan = FaultPlan(seed=seed).on("net.recv", count=None, probability=0.5)
        outcomes = []
        with plan.armed():
            for _ in range(64):
                try:
                    faults.hit("net.recv")
                    outcomes.append(False)
                except InjectedFault:
                    outcomes.append(True)
        return outcomes

    first = schedule(7)
    assert first == schedule(7)  # same seed, same failure schedule
    assert first != schedule(8)  # a different seed actually changes it
    assert any(first) and not all(first)


def test_only_one_plan_arms_at_a_time():
    plan = FaultPlan().on("mmap.gather")
    other = FaultPlan().on("mmap.gather")
    with plan.armed():
        with pytest.raises(RuntimeError, match="already armed"):
            other.arm()
        # A foreign disarm is a no-op: the armed plan stays armed.
        other.disarm()
        with pytest.raises(InjectedFault):
            faults.hit("mmap.gather")
    faults.hit("mmap.gather")  # disarmed again


def test_points_without_rules_pass_through():
    plan = FaultPlan().on("persist.write")
    with plan.armed():
        faults.hit("persist.fsync")
        faults.hit("scheduler.batch")
    assert plan.hits("persist.fsync") == 1
    assert plan.fired() == 0  # only the counters moved


def test_hit_counting_is_thread_safe():
    plan = FaultPlan().on("net.send", after=10_000)  # never fires here
    n_threads, per_thread = 8, 500

    def pound() -> None:
        for _ in range(per_thread):
            faults.hit("net.send")

    with plan.armed():
        threads = [threading.Thread(target=pound) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert plan.hits("net.send") == n_threads * per_thread
