"""Tests for the workload generators (paper examples, BioAID-like, synthetic, runs, views)."""

import pytest

from repro.analysis import is_safe, is_safe_view, is_strictly_linear_recursive
from repro.errors import UnsafeWorkflowError
from repro.model.dependency import black_box_pairs
from repro.workloads import (
    BIOAID_COMPOSITE_MODULES,
    BIOAID_MAX_PRODUCTION_SIZE,
    BIOAID_RECURSIVE_PRODUCTIONS,
    BIOAID_TOTAL_MODULES,
    BIOAID_TOTAL_PRODUCTIONS,
    SyntheticConfig,
    build_bioaid_specification,
    build_running_example,
    build_synthetic_specification,
    chain_workflow,
    idempotent_dependency_pairs,
    random_dependency_pairs,
    random_run,
    random_view,
    recursive_production_indices,
    terminal_production_choice,
    view_suite,
)


def test_running_example_structure(running_spec):
    grammar = running_spec.grammar
    assert len(grammar.productions) == 8
    assert grammar.composite_modules == frozenset({"S", "A", "B", "C", "D", "E"})
    assert grammar.production(5).rhs.module_names()[2] == "E"  # Example 19
    assert is_safe(grammar, running_spec.dependencies)


def test_bioaid_statistics(bioaid_spec):
    grammar = bioaid_spec.grammar
    assert len(grammar.module_names) == BIOAID_TOTAL_MODULES == 112
    assert len(grammar.composite_modules) == BIOAID_COMPOSITE_MODULES == 16
    assert len(grammar.productions) == BIOAID_TOTAL_PRODUCTIONS == 23
    recursive = recursive_production_indices(grammar)
    assert len(recursive) == BIOAID_RECURSIVE_PRODUCTIONS == 7
    assert max(len(p.rhs) for p in grammar.productions) <= BIOAID_MAX_PRODUCTION_SIZE
    assert all(m.n_inputs <= 4 and m.n_outputs <= 7 for m in grammar.modules.values())
    assert is_strictly_linear_recursive(grammar)
    assert is_safe(grammar, bioaid_spec.dependencies)
    assert bioaid_spec.has_single_source_sink_productions()


def test_bioaid_is_deterministic():
    a = build_bioaid_specification(seed=7)
    b = build_bioaid_specification(seed=7)
    assert a.grammar.module_names == b.grammar.module_names
    assert a.dependencies == b.dependencies


def test_synthetic_structure_and_parameters():
    config = SyntheticConfig(
        workflow_size=10, module_degree=3, nesting_depth=3, recursion_length=2
    )
    spec = build_synthetic_specification(config)
    grammar = spec.grammar
    assert len(grammar.composite_modules) == 6  # depth * recursion_length
    assert len(grammar.productions) == 12  # two per composite module
    assert is_strictly_linear_recursive(grammar)
    assert is_safe(grammar, spec.dependencies)
    for k, production in enumerate(grammar.productions, start=1):
        assert len(production.rhs) in (1, 10)
    assert all(
        m.n_inputs == 3 and m.n_outputs == 3 for m in grammar.modules.values()
    )


def test_synthetic_rejects_bad_parameters():
    with pytest.raises(ValueError):
        SyntheticConfig(workflow_size=1)
    with pytest.raises(ValueError):
        SyntheticConfig(module_degree=0)
    with pytest.raises(TypeError):
        build_synthetic_specification(SyntheticConfig(), nesting_depth=2)


def test_idempotent_pairs_are_idempotent():
    import random

    from repro.matrices import BoolMatrix

    rng = random.Random(5)
    for degree in (2, 3, 5):
        pairs = idempotent_dependency_pairs(degree, rng)
        matrix = BoolMatrix.from_pairs(pairs, degree, degree)
        assert matrix @ matrix == matrix
        assert all(matrix.get(i, i) for i in range(1, degree + 1))


def test_random_dependency_pairs_cover(running_spec):
    import random

    rng = random.Random(0)
    pairs = random_dependency_pairs(3, 4, rng)
    assert all(any(i == p for p, _ in pairs) for i in (1, 2, 3))
    assert all(any(o == p for _, p in pairs) for o in (1, 2, 3, 4))


def test_chain_workflow_requires_matching_arity():
    from repro.model import Module

    with pytest.raises(ValueError):
        chain_workflow([("x", Module("x", 1, 2)), ("y", Module("y", 1, 1))])


def test_random_run_reaches_target_and_completes(bioaid_spec):
    derivation = random_run(bioaid_spec, 300, seed=3)
    assert derivation.is_complete
    assert derivation.run.n_data_items >= 300
    # Determinism for a fixed seed.
    again = random_run(bioaid_spec, 300, seed=3)
    assert again.run.n_data_items == derivation.run.n_data_items


def test_terminal_production_choice_terminates(running_spec, bioaid_spec, synthetic_spec):
    for spec in (running_spec, bioaid_spec, synthetic_spec):
        choice = terminal_production_choice(spec.grammar)
        assert set(choice) == set(spec.grammar.composite_modules)


def test_random_views_are_proper_and_safe(bioaid_spec, synthetic_spec):
    for spec in (bioaid_spec, synthetic_spec):
        for mode in ("grey", "white", "black"):
            view = random_view(spec, 5, seed=2, mode=mode)
            view.validate_against(spec)
            assert is_safe_view(spec, view)
            assert spec.grammar.start in view.visible_composites


def test_black_views_are_black_box(bioaid_spec):
    view = random_view(bioaid_spec, 4, seed=1, mode="black")
    grammar = bioaid_spec.grammar
    for name in view.view_atomic_modules(grammar):
        assert view.dependencies.pairs(name) == black_box_pairs(grammar.module(name))


def test_view_suite_sizes(bioaid_spec):
    suite = view_suite(bioaid_spec, seed=1, sizes={"small": 2, "medium": 8, "large": 16})
    assert set(suite) == {"small", "medium", "large"}
    assert len(suite["small"].visible_composites) <= len(suite["large"].visible_composites)


def test_random_view_unknown_mode(bioaid_spec):
    with pytest.raises(ValueError):
        random_view(bioaid_spec, 3, mode="???")
