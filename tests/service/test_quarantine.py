"""Failure containment in the lifecycle manager: backoff, quarantine, recovery."""

from __future__ import annotations

import pytest

from repro.core import FVLScheme
from repro.core.run_labeler import RunLabeler
from repro.engine import QueryEngine
from repro.errors import LabelingError
from repro.service import CheckpointPolicy, RunLifecycleManager
from repro.store import run_file_info
from repro.workloads import build_bioaid_specification, random_run


@pytest.fixture(scope="module")
def spec():
    return build_bioaid_specification()


@pytest.fixture(scope="module")
def scheme(spec):
    return FVLScheme(spec)


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _failing_manager(scheme, spec, tmp_path, clock, **kwargs):
    """A managed run whose flushes fail: its directory does not exist yet."""
    engine = QueryEngine(scheme)
    manager = RunLifecycleManager(
        engine,
        policy=CheckpointPolicy(every_events=1, every_seconds=None),
        clock=clock,
        **kwargs,
    )
    labeler = RunLabeler(scheme.index)
    missing = tmp_path / "not-yet"
    manager.manage("r", missing / "r.fvl", labeler=labeler)
    for event in random_run(spec, 40, seed=50).events:
        labeler(event)
    return manager, labeler, missing


def test_knob_validation(scheme):
    engine = QueryEngine(scheme)
    with pytest.raises(ValueError, match="quarantine_after"):
        RunLifecycleManager(engine, quarantine_after=0)
    with pytest.raises(ValueError, match="backoff"):
        RunLifecycleManager(engine, retry_backoff_s=-1.0)


def test_second_failure_starts_exponential_backoff(scheme, spec, tmp_path):
    clock = FakeClock()
    manager, _, missing = _failing_manager(
        scheme, spec, tmp_path, clock, retry_backoff_s=1.0, quarantine_after=None
    )
    with pytest.raises(OSError):
        manager.poll_once()  # failure 1: retried on the very next sweep
    with pytest.raises(OSError):
        manager.poll_once()  # failure 2: backoff (1.0s) begins
    # Inside the backoff window the run is skipped — no raise, no attempt.
    assert manager.poll_once().checkpoints == []
    assert manager.stats.run_failures == 2
    clock.advance(1.1)
    with pytest.raises(OSError):
        manager.poll_once()  # failure 3: backoff doubles (2.0s)
    clock.advance(1.1)
    assert manager.poll_once().checkpoints == []  # still inside 2.0s
    clock.advance(1.0)
    missing.mkdir()
    sweep = manager.poll_once()  # backoff elapsed and the path healed
    assert len(sweep.checkpoints) == 1
    assert manager.stats.run_failures == 3
    assert manager.run_failure("r") is None  # streak cleared by the success
    manager.unmanage("r")


def test_quarantine_after_consecutive_failures(scheme, spec, tmp_path):
    clock = FakeClock()
    manager, labeler, missing = _failing_manager(
        scheme, spec, tmp_path, clock, retry_backoff_s=1.0, quarantine_after=3
    )
    for _ in range(3):
        with pytest.raises(OSError):
            manager.poll_once()
        clock.advance(60.0)  # clear any backoff window
    assert manager.quarantined_runs == ("r",)
    assert manager.stats.quarantined_runs == 1
    assert isinstance(manager.run_failure("r"), OSError)
    # Quarantined: sweeps skip the run entirely — no raise, forever.
    for _ in range(3):
        assert manager.poll_once().checkpoints == []
        clock.advance(60.0)
    # Healing the path alone is not enough for *background* sweeps...
    missing.mkdir()
    assert manager.poll_once().checkpoints == []
    # ...but an explicit flush bypasses quarantine and, on success, lifts it.
    results = manager.flush("r")
    assert len(results) == 1
    assert manager.quarantined_runs == ()
    assert run_file_info(missing / "r.fvl").n_items == len(labeler.store)
    manager.unmanage("r")


def test_unquarantine_restores_background_sweeps(scheme, spec, tmp_path):
    clock = FakeClock()
    manager, labeler, missing = _failing_manager(
        scheme, spec, tmp_path, clock, retry_backoff_s=0.0, quarantine_after=2
    )
    for _ in range(2):
        with pytest.raises(OSError):
            manager.poll_once()
        clock.advance(60.0)
    assert manager.quarantined_runs == ("r",)
    missing.mkdir()
    manager.unquarantine("r")
    sweep = manager.poll_once()
    assert len(sweep.checkpoints) == 1
    assert manager.quarantined_runs == ()
    assert manager.run_failure("r") is None
    manager.unmanage("r")


def test_unquarantine_unknown_run_raises(scheme):
    manager = RunLifecycleManager(QueryEngine(scheme))
    with pytest.raises(LabelingError, match="not managed"):
        manager.unquarantine("ghost")
    with pytest.raises(LabelingError, match="not managed"):
        manager.run_failure("ghost")


def test_quarantined_run_does_not_wedge_siblings(scheme, spec, tmp_path):
    clock = FakeClock()
    engine = QueryEngine(scheme)
    manager = RunLifecycleManager(
        engine,
        policy=CheckpointPolicy(every_events=1, every_seconds=None),
        clock=clock,
        retry_backoff_s=1.0,
        quarantine_after=2,
    )
    good_labeler = RunLabeler(scheme.index)
    bad_labeler = RunLabeler(scheme.index)
    manager.manage("good", tmp_path / "good.fvl", labeler=good_labeler)
    manager.manage("bad", tmp_path / "missing" / "bad.fvl", labeler=bad_labeler)
    events = random_run(spec, 60, seed=51).events
    half = len(events) // 2
    for event in events[:half]:
        good_labeler(event)
        bad_labeler(event)
    for _ in range(2):
        with pytest.raises(OSError):
            manager.poll_once()
        clock.advance(60.0)
    assert manager.quarantined_runs == ("bad",)
    # The good run flushed on those very sweeps and keeps flushing after.
    assert run_file_info(tmp_path / "good.fvl").n_items == len(good_labeler.store)
    for event in events[half:]:
        good_labeler(event)
    sweep = manager.poll_once()  # quarantined sibling skipped, no raise
    assert len(sweep.checkpoints) == 1
    assert run_file_info(tmp_path / "good.fvl").n_items == len(good_labeler.store)
    manager.unmanage("good")


def test_deferred_lease_retry_after_n_failed_sweeps(scheme, spec, tmp_path):
    """The directory appearing after N flush failures still gets the lease."""
    clock = FakeClock()
    manager, labeler, missing = _failing_manager(
        scheme, spec, tmp_path, clock, retry_backoff_s=0.5, quarantine_after=10
    )
    managed = manager._runs["r"]
    assert managed.lease is not None and not managed.lease.held  # deferred
    for _ in range(3):
        with pytest.raises(OSError):
            manager.poll_once()
        clock.advance(60.0)
    missing.mkdir()
    sweep = manager.poll_once()
    assert len(sweep.checkpoints) == 1
    assert managed.lease.held  # the healthy flush finally took the lease
    assert run_file_info(missing / "r.fvl").n_items == len(labeler.store)
    manager.unmanage("r")
