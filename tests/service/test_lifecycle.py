"""Unit tests for the run lifecycle service (background checkpoint/compact/reopen)."""

from __future__ import annotations

import os
import time

import pytest

from repro.core import FVLScheme, FVLVariant
from repro.core.run_labeler import RunLabeler
from repro.engine import DEFAULT_RUN, QueryEngine
from repro.errors import LabelingError, SerializationError
from repro.model.projection import ViewProjection
from repro.service import CheckpointPolicy, RunLifecycleManager
from repro.store import run_file_info
from repro.bench import sample_query_pairs
from repro.workloads import build_bioaid_specification, random_run, random_view


@pytest.fixture(scope="module")
def spec():
    return build_bioaid_specification()


@pytest.fixture(scope="module")
def scheme(spec):
    return FVLScheme(spec)


class FakeClock:
    """A manually advanced monotonic clock for deterministic policy tests."""

    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _stream(labeler, events):
    for event in events:
        labeler(event)


def _durable_items(path) -> int:
    """Header watermark of ``path``, or -1 while the writer has not committed one.

    The writer creates the file before its first header lands (header last,
    by design), so a poller must tolerate the transient headerless state.
    """
    if not os.path.exists(path):
        return -1
    try:
        return run_file_info(path).n_items
    except SerializationError:
        return -1


# -- policy --------------------------------------------------------------------


def test_policy_validation():
    with pytest.raises(ValueError):
        CheckpointPolicy(every_events=None, every_seconds=None)
    with pytest.raises(ValueError):
        CheckpointPolicy(every_events=0)
    with pytest.raises(ValueError):
        CheckpointPolicy(every_seconds=0.0)
    with pytest.raises(ValueError):
        CheckpointPolicy(compact_after_segments=1)


def test_event_bound_triggers_flush(scheme, spec, tmp_path):
    derivation = random_run(spec, 200, seed=1)
    clock = FakeClock()
    engine = QueryEngine(scheme)
    manager = RunLifecycleManager(
        engine,
        policy=CheckpointPolicy(every_events=100, every_seconds=None),
        clock=clock,
    )
    labeler = RunLabeler(scheme.index)
    manager.manage("r", tmp_path / "r.fvl", labeler=labeler)

    # Below the event bound: the sweep does nothing.
    events = derivation.events
    _stream(labeler, events[:2])
    assert 0 < len(labeler.store) < 100
    assert manager.poll_once().checkpoints == []

    # Crossing the bound flushes exactly the pending delta.
    _stream(labeler, events[2:])
    sweep = manager.poll_once()
    assert len(sweep.checkpoints) == 1
    assert sweep.flushed_items == len(labeler.store)
    assert run_file_info(tmp_path / "r.fvl").n_items == len(labeler.store)
    # Nothing pending -> the next sweep is a no-op (no empty segments).
    assert manager.poll_once().checkpoints == []
    stats = manager.stats
    assert stats.checkpoints == 1 and stats.items_flushed == len(labeler.store)


def test_time_bound_flushes_any_pending_delta(scheme, spec, tmp_path):
    derivation = random_run(spec, 120, seed=2)
    clock = FakeClock()
    engine = QueryEngine(scheme)
    manager = RunLifecycleManager(
        engine,
        policy=CheckpointPolicy(every_events=10**9, every_seconds=30.0),
        clock=clock,
    )
    labeler = RunLabeler(scheme.index)
    manager.manage("r", tmp_path / "r.fvl", labeler=labeler)
    _stream(labeler, derivation.events[:4])

    assert manager.poll_once().checkpoints == []  # time not elapsed yet
    clock.advance(29.0)
    assert manager.poll_once().checkpoints == []
    clock.advance(2.0)
    sweep = manager.poll_once()
    assert len(sweep.checkpoints) == 1 and sweep.flushed_items > 0
    # The flush resets the interval.
    _stream(labeler, derivation.events[4:6])
    assert manager.poll_once().checkpoints == []
    clock.advance(31.0)
    assert len(manager.poll_once().checkpoints) == 1


def test_multiple_due_runs_flush_in_one_batched_sweep(scheme, spec, tmp_path):
    clock = FakeClock()
    engine = QueryEngine(scheme)
    manager = RunLifecycleManager(
        engine, policy=CheckpointPolicy(every_events=1, every_seconds=None), clock=clock
    )
    labelers = {}
    for name in ("a", "b", "c"):
        labelers[name] = RunLabeler(scheme.index)
        manager.manage(name, tmp_path / f"{name}.fvl", labeler=labelers[name])
    for seed, labeler in enumerate(labelers.values()):
        _stream(labeler, random_run(spec, 60, seed=seed).events)
    sweep = manager.poll_once()
    assert len(sweep.checkpoints) == 3
    for name, labeler in labelers.items():
        assert run_file_info(tmp_path / f"{name}.fvl").n_items == len(labeler.store)


def test_manage_resumes_existing_file_watermarks(scheme, spec, tmp_path):
    derivation = random_run(spec, 150, seed=3)
    engine = QueryEngine(scheme)
    labeler = RunLabeler(scheme.index)
    _stream(labeler, derivation.events)
    path = tmp_path / "resume.fvl"

    first = RunLifecycleManager(
        engine, policy=CheckpointPolicy(every_events=1, every_seconds=None)
    )
    first.manage("r", path, labeler=labeler)
    first.flush()
    durable = run_file_info(path)

    resumed = RunLifecycleManager(
        engine, policy=CheckpointPolicy(every_events=1, every_seconds=None)
    )
    resumed.manage("r", path, labeler=labeler)
    # Already durable: the resumed manager sees no pending delta.
    assert resumed.poll_once().checkpoints == []
    assert run_file_info(path).n_segments == durable.n_segments


def test_manage_registration_errors(scheme, spec, tmp_path):
    engine = QueryEngine(scheme)
    manager = RunLifecycleManager(engine)
    labeler = RunLabeler(scheme.index)
    manager.manage("r", tmp_path / "r.fvl", labeler=labeler)
    with pytest.raises(LabelingError, match="already managed"):
        manager.manage("r", tmp_path / "other.fvl", labeler=labeler)
    with pytest.raises(LabelingError, match="not managed"):
        manager.unmanage("ghost")
    with pytest.raises(LabelingError, match="no run"):
        manager.manage("unregistered", tmp_path / "x.fvl")  # engine lookup fails
    manager.unmanage("r")
    assert manager.managed_runs == ()


def test_manage_rejects_sharing_a_run_file(scheme, spec, tmp_path):
    engine = QueryEngine(scheme)
    manager = RunLifecycleManager(engine)
    manager.manage("a", tmp_path / "shared.fvl", labeler=RunLabeler(scheme.index))
    with pytest.raises(LabelingError, match="own file"):
        manager.manage("b", tmp_path / "shared.fvl", labeler=RunLabeler(scheme.index))


def test_unmanage_keeps_the_run_when_the_final_flush_fails(scheme, spec, tmp_path):
    engine = QueryEngine(scheme)
    manager = RunLifecycleManager(engine)
    labeler = RunLabeler(scheme.index)
    missing = tmp_path / "nope" / "r.fvl"
    manager.manage("r", missing, labeler=labeler)
    _stream(labeler, random_run(spec, 40, seed=23).events)
    with pytest.raises(OSError):
        manager.unmanage("r")  # final flush fails: directory missing
    assert manager.managed_runs == ("r",)  # still retryable
    (tmp_path / "nope").mkdir()
    manager.unmanage("r")
    assert run_file_info(missing).n_items == len(labeler.store)


def test_unmanage_flushes_final_delta(scheme, spec, tmp_path):
    engine = QueryEngine(scheme)
    manager = RunLifecycleManager(
        engine, policy=CheckpointPolicy(every_events=10**9, every_seconds=3600.0)
    )
    labeler = RunLabeler(scheme.index)
    path = tmp_path / "r.fvl"
    manager.manage("r", path, labeler=labeler)
    _stream(labeler, random_run(spec, 80, seed=4).events)
    manager.unmanage("r")
    assert run_file_info(path).n_items == len(labeler.store)


def test_engine_registered_run_needs_no_explicit_labeler(scheme, spec, tmp_path):
    derivation = random_run(spec, 100, seed=5)
    engine = QueryEngine(scheme)
    engine.add_run(DEFAULT_RUN, derivation)
    manager = RunLifecycleManager(
        engine, policy=CheckpointPolicy(every_events=1, every_seconds=None)
    )
    path = tmp_path / "engine-run.fvl"
    manager.manage(DEFAULT_RUN, path)
    assert len(manager.poll_once().checkpoints) == 1
    assert run_file_info(path).n_items == derivation.run.n_data_items


# -- compaction + hot reopen ---------------------------------------------------


def test_segment_threshold_compacts_and_remaps_attached_readers(scheme, spec, tmp_path):
    derivation = random_run(spec, 400, seed=6)
    view = random_view(spec, 6, seed=9, mode="grey", name="lifecycle-view")
    items = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(items, 300, seed=13)

    reference = QueryEngine(scheme)
    reference.add_run(DEFAULT_RUN, derivation)
    expected = reference.depends_batch(pairs, view, variant=FVLVariant.DEFAULT)

    engine = QueryEngine(scheme)
    manager = RunLifecycleManager(
        engine, policy=CheckpointPolicy(every_events=1, every_seconds=None)
    )
    labeler = RunLabeler(scheme.index)
    path = tmp_path / "managed.fvl"
    # No compaction while the segment chain builds up...
    manager.manage("stream", path, labeler=labeler)
    events = derivation.events
    step = max(1, len(events) // 5)
    for lo in range(0, len(events), step):
        _stream(labeler, events[lo : lo + step])
        manager.poll_once()
    assert run_file_info(path).n_segments >= 4
    assert run_file_info(path).generation == 0

    # Attach a live reader before compaction so the sweep must remap it.
    mapped = engine.attach(path, run_id="reader")
    assert mapped.n_segments >= 4
    before = engine.depends_batch(pairs, view, run="reader", variant=FVLVariant.DEFAULT)
    assert before == expected

    # ...then hand the run to a compacting policy: the next sweep merges
    # the chain and remaps the attached reader in the same pass.
    manager.unmanage("stream")
    manager.manage(
        "stream",
        path,
        labeler=labeler,
        policy=CheckpointPolicy(
            every_events=1, every_seconds=None, compact_after_segments=4
        ),
    )
    sweep = manager.poll_once()
    assert len(sweep.compactions) == 1 and sweep.compactions[0].compacted
    assert sweep.reopened == ["reader"]
    shard_store = engine._shards["reader"].mapped
    assert shard_store.generation == 1 and shard_store.n_segments == 1
    assert max(shard_store.extents_per_column().values()) == 1
    after = engine.depends_batch(pairs, view, run="reader", variant=FVLVariant.DEFAULT)
    assert after == expected
    assert manager.stats.compactions == 1 and manager.stats.reopens == 1

    # Ingest continues after the swap: the next delta appends to the
    # compacted generation instead of forcing a fresh file.
    assert run_file_info(path).generation == 1


def test_compact_run_on_demand_flushes_first(scheme, spec, tmp_path):
    derivation = random_run(spec, 200, seed=7)
    engine = QueryEngine(scheme)
    manager = RunLifecycleManager(
        engine, policy=CheckpointPolicy(every_events=1, every_seconds=None)
    )
    labeler = RunLabeler(scheme.index)
    path = tmp_path / "ondemand.fvl"
    manager.manage("r", path, labeler=labeler)
    events = derivation.events
    _stream(labeler, events[: len(events) // 2])
    manager.poll_once()
    _stream(labeler, events[len(events) // 2 :])
    # Pending delta + existing segment: compact_run flushes, then merges.
    result = manager.compact_run("r")
    assert result.compacted and result.segments_before == 2
    info = run_file_info(path)
    assert info.n_items == len(labeler.store)
    assert info.n_segments == 1 and info.generation == 1
    # Single-segment file: a second compaction is a no-op.
    assert not manager.compact_run("r").compacted


# -- the background thread -----------------------------------------------------


def test_background_thread_reaches_durability_without_checkpoint_calls(
    scheme, spec, tmp_path
):
    """Acceptance: a managed streaming ingest becomes durable hands-off."""
    derivation = random_run(spec, 300, seed=8)
    engine = QueryEngine(scheme)
    labeler = RunLabeler(scheme.index)
    path = tmp_path / "threaded.fvl"
    policy = CheckpointPolicy(every_events=50, every_seconds=0.01)
    with RunLifecycleManager(engine, policy=policy, poll_interval=0.005) as manager:
        manager.manage("stream", path, labeler=labeler)
        assert manager.running
        for event in derivation.events:
            labeler(event)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if _durable_items(path) == len(labeler.store):
                break
            time.sleep(0.01)
        assert run_file_info(path).n_items == len(labeler.store)
        assert manager.last_error is None
    # stop() joined the thread and flushed; the file is complete and valid.
    assert not manager.running
    assert run_file_info(path).n_items == derivation.run.n_data_items
    served = QueryEngine(scheme)
    served.attach(path, run_id=DEFAULT_RUN)
    assert manager.stats.checkpoints >= 1

    with pytest.raises(RuntimeError):
        with manager:
            manager.start()  # already running


def test_background_thread_recovers_and_clears_last_error(scheme, spec, tmp_path):
    engine = QueryEngine(scheme)
    labeler = RunLabeler(scheme.index)
    missing_dir = tmp_path / "not-yet-here"
    path = missing_dir / "r.fvl"
    with RunLifecycleManager(
        engine,
        policy=CheckpointPolicy(every_events=1, every_seconds=None),
        poll_interval=0.005,
    ) as manager:
        manager.manage("r", path, labeler=labeler)
        _stream(labeler, random_run(spec, 60, seed=20).events)
        deadline = time.monotonic() + 5.0
        while manager.last_error is None and time.monotonic() < deadline:
            time.sleep(0.005)
        assert isinstance(manager.last_error, OSError)  # directory missing
        # Heal the environment: the next healthy sweep clears the error and
        # the delta becomes durable.
        missing_dir.mkdir()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if manager.last_error is None and _durable_items(path) == len(
                labeler.store
            ):
                break
            time.sleep(0.005)
        assert manager.last_error is None
        assert run_file_info(path).n_items == len(labeler.store)


def test_one_bad_path_does_not_wedge_sibling_runs(scheme, spec, tmp_path):
    """A failing job in a batched sweep must not poison or starve the others."""
    engine = QueryEngine(scheme)
    manager = RunLifecycleManager(
        engine, policy=CheckpointPolicy(every_events=1, every_seconds=None)
    )
    good_labeler = RunLabeler(scheme.index)
    bad_labeler = RunLabeler(scheme.index)
    good_path = tmp_path / "good.fvl"
    manager.manage("good", good_path, labeler=good_labeler)
    manager.manage("bad", tmp_path / "missing-dir" / "bad.fvl", labeler=bad_labeler)
    _stream(good_labeler, random_run(spec, 60, seed=21).events)
    _stream(bad_labeler, random_run(spec, 60, seed=22).events)
    # The failure still surfaces, but the per-run fallback makes the good
    # run durable in the SAME sweep — one bad run cannot starve siblings —
    # and the good run's rolled-back batch file is not left headerless.
    with pytest.raises(OSError):
        manager.poll_once()
    assert run_file_info(good_path).n_items == len(good_labeler.store)
    # Once the bad run is gone the service is healthy again (no re-flush:
    # the good run's watermark advanced despite the failed sweep).
    manager.unmanage("bad", flush=False)
    assert manager.poll_once().checkpoints == []


def test_path_and_node_only_tails_are_flushed(scheme, tmp_path):
    """A trailing delta with zero label items (trie/node rows only) still persists."""
    import types

    from repro.store import LabelStore, PathTable

    table = PathTable()
    store = LabelStore(table)
    stub = types.SimpleNamespace(store=store, tree=types.SimpleNamespace(nodes=None))
    clock = FakeClock()
    manager = RunLifecycleManager(
        QueryEngine(scheme),
        policy=CheckpointPolicy(every_events=5, every_seconds=30.0),
        clock=clock,
    )
    path = tmp_path / "tail.fvl"
    manager.manage("r", path, labeler=stub)
    a = table.extend_production(0, 1, 1)
    store.append(0, a, 1, a, 2)
    manager.flush()
    assert run_file_info(path).n_items == 1

    # Tail: new trie rows, zero new items.  The run must still come due on
    # the time bound and the final flush must persist the path rows.
    table.extend_production(a, 2, 1)
    assert manager.poll_once().checkpoints == []  # below both bounds
    clock.advance(31.0)
    sweep = manager.poll_once()
    assert len(sweep.checkpoints) == 1
    assert sweep.checkpoints[0].delta_paths == 1
    assert sweep.checkpoints[0].delta_items == 0
    assert run_file_info(path).n_paths == len(table)
    # Nothing pending anymore -> no empty segments.
    clock.advance(31.0)
    assert manager.poll_once().checkpoints == []
    # unmanage's final flush honours trie-only tails too.
    table.extend_production(a, 3, 1)
    manager.unmanage("r")
    assert run_file_info(path).n_paths == len(table)


# -- amplification-triggered compaction ----------------------------------------


def test_policy_validates_compact_amplification():
    with pytest.raises(ValueError, match="compact_amplification"):
        CheckpointPolicy(compact_amplification=1.0)
    CheckpointPolicy(compact_amplification=1.01)  # anything above 1.0 is legal


def test_amplification_threshold_triggers_compaction(scheme, spec, tmp_path):
    """The bytes-ratio trigger compacts a chain of tiny flushes on its own."""
    derivation = random_run(spec, 300, seed=30)
    engine = QueryEngine(scheme)
    manager = RunLifecycleManager(
        engine,
        policy=CheckpointPolicy(
            every_events=1,
            every_seconds=None,
            compact_after_segments=None,  # only the measured ratio decides
            compact_amplification=1.5,
        ),
    )
    labeler = RunLabeler(scheme.index)
    path = tmp_path / "amplified.fvl"
    manager.manage("r", path, labeler=labeler)
    events = derivation.events
    step = max(1, len(events) // 8)
    compactions = []
    for lo in range(0, len(events), step):
        _stream(labeler, events[lo : lo + step])
        compactions.extend(manager.poll_once().compactions)
    manager.unmanage("r")
    assert compactions, "tiny-flush chain never crossed the amplification bound"
    assert all(result.compacted for result in compactions)
    # After the final compaction the measured ratio is back at 1.0 for the
    # compacted generation, so the trigger cannot re-fire on a merged file.
    final = run_file_info(path, estimate_amplification=True)
    if final.n_segments == 1:
        assert final.read_amplification == 1.0


def test_amplification_trigger_measures_before_firing(scheme, spec, tmp_path):
    """One flush -> a single-segment file: ratio 1.0, nothing to compact."""
    derivation = random_run(spec, 100, seed=31)
    engine = QueryEngine(scheme)
    manager = RunLifecycleManager(
        engine,
        policy=CheckpointPolicy(
            every_events=1, every_seconds=None, compact_amplification=1.1
        ),
    )
    labeler = RunLabeler(scheme.index)
    manager.manage("r", tmp_path / "single.fvl", labeler=labeler)
    _stream(labeler, derivation.events)
    sweep = manager.poll_once()
    assert len(sweep.checkpoints) == 1
    assert sweep.compactions == []  # single segment: no chain, no estimate


# -- the cross-process writer lease --------------------------------------------


def test_manage_holds_the_lease_and_unmanage_releases_it(scheme, spec, tmp_path):
    from repro.store import FileLease

    engine = QueryEngine(scheme)
    manager = RunLifecycleManager(engine)
    labeler = RunLabeler(scheme.index)
    path = tmp_path / "leased.fvl"
    manager.manage("r", path, labeler=labeler)
    managed = manager._runs["r"]
    assert managed.lease is not None and managed.lease.held
    assert os.path.exists(managed.lease.lock_path)
    owner = managed.lease.owner()
    assert owner is not None and owner.pid == os.getpid()
    # In-process lease sharing: a bare compact() of the same file coexists
    # with the manager instead of deadlocking on the kernel lock.
    _stream(labeler, random_run(spec, 120, seed=32).events)
    manager.poll_once()
    assert manager.compact_run("r") is not None
    manager.unmanage("r")
    assert not managed.lease.held
    # Released: a fresh manager (posing as "another process") can take it.
    with FileLease(path) as probe:
        assert probe.held


def test_use_leases_false_opts_out(scheme, spec, tmp_path):
    engine = QueryEngine(scheme)
    manager = RunLifecycleManager(engine, use_leases=False)
    labeler = RunLabeler(scheme.index)
    path = tmp_path / "unleased.fvl"
    manager.manage("r", path, labeler=labeler)
    assert manager._runs["r"].lease is None
    # Compaction honours the opt-out too: on a filesystem without advisory
    # locking a leased compact() would fail every sweep.
    events = random_run(spec, 120, seed=34).events
    _stream(labeler, events[: len(events) // 2])
    manager.flush()
    _stream(labeler, events[len(events) // 2 :])
    assert manager.compact_run("r").compacted
    assert not os.path.exists(str(path) + ".lock")
    manager.unmanage("r")


def test_manage_refuses_a_file_whose_writer_is_another_process(
    scheme, spec, tmp_path
):
    """Acceptance: two processes can never both manage one run file."""
    import subprocess
    import sys
    import textwrap

    from repro.store import LeaseHeldError

    path = tmp_path / "contested.fvl"
    ready = tmp_path / "ready"
    release = tmp_path / "release"
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    holder = subprocess.Popen(
        [
            sys.executable,
            "-c",
            textwrap.dedent(
                f"""
                import os, sys, time
                sys.path.insert(0, {src!r})
                from repro.store import FileLease
                lease = FileLease({os.fspath(path)!r}).acquire()
                open({os.fspath(ready)!r}, "w").close()
                deadline = time.monotonic() + 30
                while not os.path.exists({os.fspath(release)!r}):
                    if time.monotonic() > deadline:
                        sys.exit(2)
                    time.sleep(0.01)
                lease.release()
                """
            ),
        ]
    )
    try:
        deadline = time.monotonic() + 30
        while not ready.exists():
            assert time.monotonic() < deadline, "lease holder never came up"
            time.sleep(0.01)
        engine = QueryEngine(scheme)
        manager = RunLifecycleManager(engine)
        labeler = RunLabeler(scheme.index)
        with pytest.raises(LeaseHeldError, match="writer lease"):
            manager.manage("r", path, labeler=labeler)
        assert manager.managed_runs == ()  # the refused run was not half-added
    finally:
        release.touch()
        holder.wait(timeout=30)


def test_deferred_lease_is_acquired_by_the_first_healthy_flush(scheme, spec, tmp_path):
    """A missing directory defers the lease; the flush that creates the file takes it."""
    engine = QueryEngine(scheme)
    manager = RunLifecycleManager(
        engine, policy=CheckpointPolicy(every_events=1, every_seconds=None)
    )
    labeler = RunLabeler(scheme.index)
    missing = tmp_path / "later"
    path = missing / "r.fvl"
    manager.manage("r", path, labeler=labeler)
    managed = manager._runs["r"]
    assert managed.lease is not None and not managed.lease.held  # deferred
    _stream(labeler, random_run(spec, 40, seed=33).events)
    with pytest.raises(OSError):
        manager.poll_once()  # directory still missing: the flush itself fails
    missing.mkdir()
    sweep = manager.poll_once()
    assert len(sweep.checkpoints) == 1
    assert managed.lease.held  # the retry took the lease before writing
    manager.unmanage("r")
