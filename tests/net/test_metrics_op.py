"""The metrics wire op and the traced-request frame flag.

Unit half: round-trip the new frame kinds through encode/decode — a metrics
request/reply pair, the optional trace-id field on query frames, and the
guarantee that an untraced frame is byte-identical to the pre-trace format.

Integration half: serve a real workload over a unix socket, scrape the
server with the metrics op, and assert the Prometheus text parses and its
query counters equal what ``EngineStats`` reports — the wire exposition and
the in-process stats are views over the same registry, so they can never
disagree.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FVLScheme
from repro.engine import DEFAULT_RUN, QueryEngine
from repro.model.projection import ViewProjection
from repro.net import ProvenanceClient, ProvenanceNetServer
from repro.net.protocol import (
    OP_DEPENDS,
    TRACE_FLAG,
    MetricsReply,
    MetricsRequest,
    QueryRequest,
    decode_reply,
    decode_request,
    encode_depends_request,
    encode_metrics_reply,
    encode_metrics_request,
    encode_visible_request,
)
from repro.obs.metrics import parse_exposition
from repro.serve import ProvenanceServer
from repro.bench import sample_query_pairs
from repro.workloads import build_bioaid_specification, random_run, random_view

_LEN_PREFIX = 4


def _payload(frame: bytes) -> bytes:
    return frame[_LEN_PREFIX:]


# -- unit: frame round trips ----------------------------------------------------


def test_metrics_request_round_trip():
    request = decode_request(_payload(encode_metrics_request(7)))
    assert isinstance(request, MetricsRequest)
    assert request.request_id == 7


def test_metrics_reply_round_trip():
    text = '# TYPE x_total counter\nx_total{op="depends"} 3\n'
    reply = decode_reply(_payload(encode_metrics_reply(9, text)))
    assert isinstance(reply, MetricsReply)
    assert reply.request_id == 9
    assert reply.text == text
    assert parse_exposition(reply.text)[("x_total", (("op", "depends"),))] == 3


def test_trace_id_rides_the_query_frame():
    ids = np.array([[1, 2], [3, 4]], dtype=np.int64)
    frame = encode_depends_request(5, "r", "v", None, ids, trace_id=0xDEADBEEF)
    payload = _payload(frame)
    assert payload[0] == OP_DEPENDS | TRACE_FLAG
    request = decode_request(payload)
    assert isinstance(request, QueryRequest)
    assert request.trace_id == 0xDEADBEEF
    assert request.op == OP_DEPENDS  # the flag is masked off the op
    assert request.run == "r" and request.view == "v"
    assert request.ids.tolist() == ids.tolist()


def test_trace_id_survives_visible_frames_and_64_bits():
    uids = np.array([10, 11], dtype=np.int64)
    big = (1 << 64) - 3
    request = decode_request(
        _payload(encode_visible_request(1, "r", "v", None, uids, trace_id=big))
    )
    assert request.trace_id == big


def test_untraced_frame_is_byte_identical_to_legacy_format():
    ids = np.array([[1, 2]], dtype=np.int64)
    plain = encode_depends_request(3, "run", "view", None, ids)
    explicit = encode_depends_request(3, "run", "view", None, ids, trace_id=None)
    assert plain == explicit
    payload = _payload(plain)
    assert payload[0] == OP_DEPENDS  # no flag bit
    request = decode_request(payload)
    assert request.trace_id is None


# -- integration: scrape a served workload --------------------------------------


@pytest.fixture(scope="module")
def spec():
    return build_bioaid_specification()


@pytest.fixture(scope="module")
def scheme(spec):
    return FVLScheme(spec)


def test_wire_scrape_matches_engine_stats(scheme, spec, tmp_path):
    derivation = random_run(spec, 200, seed=11)
    view = random_view(spec, 6, seed=12, mode="grey", name="scrape-view")
    items = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(items, 120, seed=13)

    engine = QueryEngine(scheme)
    labeler = engine.add_run(DEFAULT_RUN, derivation)
    assert labeler is not None
    engine.add_view(view)
    sock_path = tmp_path / "metrics.sock"
    with ProvenanceServer(engine, workers=2) as server:
        with ProvenanceNetServer(server, unix_path=sock_path):
            with ProvenanceClient(unix_path=sock_path) as client:
                client.depends_batch(pairs, view.name)
                client.is_visible_batch(items[:40], view.name)
                text = client.server_metrics()

    parsed = parse_exposition(text)
    stats = engine.stats

    def total(name, **labels):
        want = set(labels.items())
        return sum(
            v for (n, lv), v in parsed.items() if n == name and want <= set(lv)
        )

    # The scrape's query counters equal what was submitted and answered.
    assert total("engine_queries_total", op="depends") == len(pairs)
    assert total("engine_queries_total", op="visible") == 40
    assert total("serve_answered_total") == len(pairs) + 40
    assert total("net_answered_frames_total") == 2
    assert total("net_metrics_requests_total") == 1
    # The exposition and EngineStats are views over one registry: the pair
    # tallies must agree exactly.
    assert total("engine_pairs_total", mode="structural") == stats.structural_pairs
    assert total("engine_pairs_total", mode="matrix") == stats.matrix_pairs
    assert stats.structural_pairs + stats.matrix_pairs > 0
