"""Tests for the socket server and pooled client (net/server.py, net/client.py)."""

from __future__ import annotations

import socket
import struct
import threading
import time

import pytest

from repro.core import FVLScheme, FVLVariant
from repro.engine import DEFAULT_RUN, QueryEngine
from repro.model.projection import ViewProjection
from repro.net import (
    ProvenanceClient,
    ProvenanceNetServer,
    RemoteQueryError,
    ServerOverloadedError,
)
from repro.serve import BatchPolicy, ProvenanceServer
from repro.bench import sample_query_pairs
from repro.workloads import build_bioaid_specification, random_run, random_view


@pytest.fixture(scope="module")
def spec():
    return build_bioaid_specification()


@pytest.fixture(scope="module")
def scheme(spec):
    return FVLScheme(spec)


@pytest.fixture(scope="module")
def workload(spec):
    derivation = random_run(spec, 250, seed=41)
    view = random_view(spec, 6, seed=42, mode="grey", name="net-view")
    items = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(items, 300, seed=43)
    return derivation, view, items, pairs


@pytest.fixture(scope="module")
def run_file(scheme, workload, tmp_path_factory):
    derivation, view, items, pairs = workload
    reference = QueryEngine(scheme)
    reference.add_run(DEFAULT_RUN, derivation)
    expected = reference.depends_batch(pairs, view, variant=FVLVariant.DEFAULT)
    expected_visible = reference.is_visible_batch(items, view)
    path = tmp_path_factory.mktemp("net") / "net.fvl"
    reference.checkpoint(path)
    return path, expected, expected_visible


@pytest.fixture()
def served(scheme, workload, run_file, tmp_path):
    """A running scheduler + net server on a unix socket and a TCP port."""
    _, view, items, pairs = workload
    path, expected, expected_visible = run_file
    engine = QueryEngine(scheme)
    server = ProvenanceServer(engine, workers=2)
    server.attach(path)
    engine.add_view(view)
    sock_path = tmp_path / "prov.sock"
    with server:
        with ProvenanceNetServer(
            server, unix_path=sock_path, host="127.0.0.1", port=0
        ) as net:
            yield net, sock_path, view, items, pairs, expected, expected_visible


# -- correctness over the wire --------------------------------------------------


def test_unix_socket_answers_bit_identical(served):
    net, sock_path, view, items, pairs, expected, expected_visible = served
    with ProvenanceClient(unix_path=sock_path) as client:
        assert client.depends_batch(pairs, view.name) == expected
        assert client.is_visible_batch(items, view.name) == expected_visible


def test_tcp_answers_match_unix(served):
    net, sock_path, view, items, pairs, expected, _ = served
    assert net.tcp_address is not None
    with ProvenanceClient(address=net.tcp_address) as client:
        assert client.depends_batch(pairs, view.name) == expected


def test_explicit_variant_crosses_the_wire(served):
    net, sock_path, view, _, pairs, expected, _ = served
    with ProvenanceClient(unix_path=sock_path) as client:
        got = client.depends_batch(
            pairs[:25], view.name, variant=FVLVariant.SPACE_EFFICIENT
        )
        assert got == expected[:25]


def test_singleton_helpers_coalesce_client_side(served):
    net, sock_path, view, items, pairs, expected, expected_visible = served
    with ProvenanceClient(unix_path=sock_path, pool_size=2, max_linger_us=2000) as client:
        n = 24
        results: list = [None] * n

        def probe(index: int) -> None:
            if index % 2:
                results[index] = client.depends(*pairs[index], view.name)
            else:
                results[index] = client.is_visible(items[index], view.name)

        threads = [threading.Thread(target=probe, args=(i,)) for i in range(n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for index in range(n):
            want = expected[index] if index % 2 else expected_visible[index]
            assert results[index] == want
    # Coalescing produced fewer request frames than probes.
    assert net.stats.frames < n


def test_empty_batches_short_circuit(served):
    net, sock_path, view, _, _, _, _ = served
    with ProvenanceClient(unix_path=sock_path) as client:
        assert client.depends_batch([], view.name) == []
        assert client.is_visible_batch([], view.name) == []


def test_many_threaded_clients_bit_identical(served):
    net, sock_path, view, items, pairs, expected, expected_visible = served
    n_clients = 8
    errors: list = []

    def client_thread() -> None:
        try:
            with ProvenanceClient(unix_path=sock_path, retries=8) as client:
                assert client.depends_batch(pairs, view.name) == expected
                assert client.is_visible_batch(items, view.name) == expected_visible
        except Exception as exc:  # pragma: no cover - surfaced by the assert
            errors.append(exc)

    threads = [threading.Thread(target=client_thread) for _ in range(n_clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    stats = net.stats
    assert stats.connections >= n_clients
    assert stats.answered_frames >= 2 * n_clients


# -- failure surfaces -----------------------------------------------------------


def test_unknown_view_raises_remote_error(served):
    net, sock_path, _, _, pairs, _, _ = served
    with ProvenanceClient(unix_path=sock_path) as client:
        with pytest.raises(RemoteQueryError, match="unknown view") as info:
            client.depends_batch(pairs[:3], "no-such-view")
        assert info.value.kind == "ViewError"


def test_unknown_run_raises_remote_error(served):
    net, sock_path, view, _, pairs, _, _ = served
    with ProvenanceClient(unix_path=sock_path) as client:
        with pytest.raises(RemoteQueryError):
            client.depends_batch(pairs[:3], view.name, run="no-such-run")


def test_full_queue_sheds_instead_of_hanging(scheme, workload, tmp_path):
    """A wedged scheduler (no workers) yields SHED replies, never a hang."""
    _, view, _, pairs = workload
    backed_up = ProvenanceServer(
        QueryEngine(scheme), policy=BatchPolicy(max_batch=8, max_queue=8)
    )
    sock_path = tmp_path / "wedged.sock"
    with ProvenanceNetServer(backed_up, unix_path=sock_path) as net:
        filler = ProvenanceClient(unix_path=sock_path, timeout=10.0)
        fill_done = threading.Event()

        def fill() -> None:
            try:
                filler.depends_batch(pairs[:8], view.name)  # never answered
            except Exception:
                pass
            finally:
                fill_done.set()

        thread = threading.Thread(target=fill, daemon=True)
        thread.start()
        deadline = time.monotonic() + 5.0
        while backed_up.pending < 8 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert backed_up.pending == 8
        with ProvenanceClient(unix_path=sock_path) as client:
            with pytest.raises(ServerOverloadedError) as info:
                client.depends_batch(pairs[:4], view.name)
            assert info.value.queue_depth == 8
            assert info.value.retry_after_s > 0
        assert net.stats.sheds == 1
        filler.close()
        fill_done.wait(5.0)


def test_oversized_batch_answers_error_and_survives(scheme, workload, tmp_path):
    _, view, _, pairs = workload
    tiny = ProvenanceServer(
        QueryEngine(scheme), policy=BatchPolicy(max_batch=8, max_queue=8)
    )
    sock_path = tmp_path / "tiny.sock"
    with ProvenanceNetServer(tiny, unix_path=sock_path) as net:
        with ProvenanceClient(unix_path=sock_path) as client:
            with pytest.raises(RemoteQueryError, match="never fit"):
                client.depends_batch(pairs[:20], view.name)
            # The loop survived; the connection still answers stats.
            assert client.server_stats()["status"] == "ok"


def test_shed_retries_eventually_succeed(served):
    """retries= resends after the server's retry-after hint."""
    net, sock_path, view, _, pairs, expected, _ = served
    with ProvenanceClient(unix_path=sock_path, retries=10) as client:
        threads = []
        results: list = [None] * 6
        def hammer(index: int) -> None:
            results[index] = client.depends_batch(pairs, view.name)
        for index in range(6):
            threads.append(threading.Thread(target=hammer, args=(index,)))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(answers == expected for answers in results)


def test_garbage_on_the_port_drops_that_connection_only(served):
    net, sock_path, view, _, pairs, expected, _ = served
    raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    raw.connect(str(sock_path))
    raw.sendall(struct.pack("<I", 1 << 30))  # absurd length prefix
    assert raw.recv(1) == b""  # server hangs up on the violator
    raw.close()
    with ProvenanceClient(unix_path=sock_path) as client:  # others unaffected
        assert client.depends_batch(pairs[:10], view.name) == expected[:10]


# -- stats & lifecycle ----------------------------------------------------------


def test_stats_endpoint_exposes_scheduler_and_transport(served):
    net, sock_path, view, _, pairs, _, _ = served
    with ProvenanceClient(unix_path=sock_path) as client:
        client.depends_batch(pairs[:10], view.name)
        payload = client.server_stats()
        # Workers resolve futures before bumping counters, so the answers can
        # arrive a beat ahead of the stats — poll briefly.
        deadline = time.monotonic() + 5.0
        while payload["server"]["answered"] < 10 and time.monotonic() < deadline:
            time.sleep(0.01)
            payload = client.server_stats()
    assert payload["status"] == "ok"
    assert payload["runs"] == [DEFAULT_RUN]
    assert payload["queue_depth"] >= 0
    assert payload["server"]["answered"] >= 10
    assert payload["server"]["engine_calls"] >= 1
    assert payload["net"]["frames"] >= 1
    assert payload["net"]["connections"] >= 1


def test_start_twice_rejected_and_restartable(scheme, tmp_path):
    server = ProvenanceServer(QueryEngine(scheme))
    sock_path = tmp_path / "cycle.sock"
    net = ProvenanceNetServer(server, unix_path=sock_path)
    with net:
        assert net.running
        with pytest.raises(RuntimeError, match="already running"):
            net.start()
    assert not net.running
    with net:  # the socket path is reusable after a clean stop
        assert net.running


def test_stale_socket_file_is_reclaimed(scheme, tmp_path):
    sock_path = tmp_path / "stale.sock"
    dead = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    dead.bind(str(sock_path))
    dead.close()  # bound but never listening: a crash leftover
    server = ProvenanceServer(QueryEngine(scheme))
    with ProvenanceNetServer(server, unix_path=sock_path) as net:
        assert net.running


def test_live_socket_is_not_stolen(scheme, workload, tmp_path):
    _, view, _, pairs = workload
    sock_path = tmp_path / "owned.sock"
    first = ProvenanceServer(QueryEngine(scheme))
    with ProvenanceNetServer(first, unix_path=sock_path):
        second = ProvenanceNetServer(ProvenanceServer(QueryEngine(scheme)), unix_path=sock_path)
        with pytest.raises(OSError):
            second.start()


def test_client_requires_exactly_one_target(tmp_path):
    with pytest.raises(ValueError, match="exactly one"):
        ProvenanceClient()
    with pytest.raises(ValueError, match="exactly one"):
        ProvenanceClient(unix_path=tmp_path / "x.sock", address=("h", 1))


def test_net_server_requires_a_listener(scheme):
    with pytest.raises(ValueError, match="bind"):
        ProvenanceNetServer(ProvenanceServer(QueryEngine(scheme)))
