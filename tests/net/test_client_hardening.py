"""Client overload/fault hardening: pool discard, backoff, circuit breaker."""

from __future__ import annotations

import threading

import pytest

import repro.net.client as client_module
from repro.core import FVLScheme, FVLVariant
from repro.engine import DEFAULT_RUN, QueryEngine
from repro.errors import ReproError, SerializationError
from repro.faults import FaultPlan
from repro.model.projection import ViewProjection
from repro.net import (
    CircuitOpenError,
    ProvenanceClient,
    ProvenanceNetServer,
    ServerOverloadedError,
)
from repro.net.protocol import AnswersReply, ShedReply
from repro.serve import ProvenanceServer
from repro.bench import sample_query_pairs
from repro.workloads import build_bioaid_specification, random_run, random_view


@pytest.fixture(scope="module")
def spec():
    return build_bioaid_specification()


@pytest.fixture(scope="module")
def scheme(spec):
    return FVLScheme(spec)


@pytest.fixture(scope="module")
def workload(spec):
    derivation = random_run(spec, 200, seed=71)
    view = random_view(spec, 6, seed=72, mode="grey", name="harden-view")
    items = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(items, 100, seed=73)
    return derivation, view, items, pairs


@pytest.fixture()
def served(scheme, workload, tmp_path):
    derivation, view, items, pairs = workload
    reference = QueryEngine(scheme)
    reference.add_run(DEFAULT_RUN, derivation)
    expected = reference.depends_batch(pairs, view, variant=FVLVariant.DEFAULT)
    run_file = tmp_path / "harden.fvl"
    reference.checkpoint(run_file)
    engine = QueryEngine(scheme)
    server = ProvenanceServer(engine, workers=1)
    server.attach(run_file)
    engine.add_view(view)
    sock_path = tmp_path / "harden.sock"
    with server:
        with ProvenanceNetServer(server, unix_path=sock_path) as net:
            yield net, sock_path, view, pairs, expected


# -- pool hygiene ---------------------------------------------------------------


def test_mid_stream_fault_discards_the_connection(served):
    """Regression: a connection whose RPC died mid-stream must not be pooled."""
    net, sock_path, view, pairs, expected = served
    with ProvenanceClient(unix_path=sock_path, pool_size=1) as client:
        assert client.depends_batch(pairs[:5], view.name) == expected[:5]
        assert len(client._pool) == 1  # the healthy conn went back
        plan = FaultPlan().on("net.recv", count=1)
        with plan.armed():
            # The fault fires on whichever side recvs first (client read or
            # server read of this very frame); either way the round trip
            # dies mid-stream with a loud error — an InjectedFault, an EOF
            # SerializationError, or a reset — never a wrong answer.
            with pytest.raises((ReproError, OSError)):
                client.depends_batch(pairs[:5], view.name)
        # The poisoned connection was discarded, not returned...
        assert len(client._pool) == 0 and client._pool_open == 0
        # ...so the next call dials fresh and the stream is back in sync.
        assert client.depends_batch(pairs[:5], view.name) == expected[:5]


def test_undecodable_reply_discards_the_connection(served, monkeypatch):
    """Regression: decode happens before the conn is declared healthy."""
    net, sock_path, view, pairs, expected = served
    real_decode = client_module._decode_reply
    blown = threading.Event()

    def decode_once_badly(payload):
        if not blown.is_set():
            blown.set()
            raise SerializationError("injected undecodable reply")
        return real_decode(payload)

    with ProvenanceClient(unix_path=sock_path, pool_size=1) as client:
        monkeypatch.setattr(client_module, "_decode_reply", decode_once_badly)
        with pytest.raises(SerializationError, match="undecodable"):
            client.depends_batch(pairs[:5], view.name)
        assert len(client._pool) == 0 and client._pool_open == 0
        assert client.depends_batch(pairs[:5], view.name) == expected[:5]


# -- shed backoff ---------------------------------------------------------------


class _ShedTransport:
    """Drop-in for ProvenanceClient._round_trip: shed N times, then answer."""

    def __init__(self, client, sheds, retry_after_s=30.0, answers=None):
        self.calls = 0
        self.sheds = sheds
        self.retry_after_s = retry_after_s
        self.answers = [] if answers is None else answers
        client._round_trip = self._round_trip

    def _round_trip(self, frame):
        self.calls += 1
        if self.calls <= self.sheds:
            return ShedReply(0, self.retry_after_s, 8)
        return AnswersReply(0, self.answers)


class _FakeTime:
    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps: list[float] = []

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


def _offline_client(**kwargs) -> ProvenanceClient:
    """A client whose transport is replaced; the socket is never dialled."""
    return ProvenanceClient(unix_path="/nonexistent/prov.sock", **kwargs)


def test_shed_sleeps_are_capped_and_jittered():
    fake = _FakeTime()
    client = _offline_client(
        retries=4,
        backoff_base_s=0.01,
        backoff_cap_s=0.25,
        retry_after_cap_s=0.05,
        breaker_threshold=None,
        clock=fake.clock,
        sleep=fake.sleep,
        jitter_seed=3,
    )
    _ShedTransport(client, sheds=3, answers=[True, False])
    assert client.depends_batch([(1, 2), (3, 4)], "v") == [True, False]
    assert len(fake.sleeps) == 3
    # The server's absurd 30s hint was clipped to retry_after_cap_s, and no
    # jittered sleep exceeds 1.5x the backoff cap.
    assert all(s <= 0.25 * 1.5 for s in fake.sleeps)
    assert all(s > 0 for s in fake.sleeps)
    assert len(set(fake.sleeps)) > 1  # jitter decorrelates the delays


def test_shed_backoff_grows_exponentially():
    fake = _FakeTime()
    client = _offline_client(
        retries=6,
        backoff_base_s=0.01,
        backoff_cap_s=64.0,
        retry_after_cap_s=0.0,  # ignore the hint entirely
        retry_budget_s=1e9,
        breaker_threshold=None,
        clock=fake.clock,
        sleep=fake.sleep,
        jitter_seed=5,
    )
    _ShedTransport(client, sheds=5, answers=[True])
    client.depends_batch([(1, 2)], "v")
    # Jitter spans [0.5, 1.5), so consecutive doublings stay ordered once
    # two steps apart: delay_n * 2 * 0.5 > delay_n * 1.5 is false, but
    # 4x growth dominates the jitter band.
    assert fake.sleeps[2] > fake.sleeps[0]
    assert fake.sleeps[4] > fake.sleeps[2]


def test_retry_budget_bounds_total_backoff():
    fake = _FakeTime()
    client = _offline_client(
        retries=1000,
        retry_budget_s=0.5,
        backoff_base_s=0.1,
        backoff_cap_s=0.1,
        breaker_threshold=None,
        clock=fake.clock,
        sleep=fake.sleep,
        jitter_seed=1,
    )
    transport = _ShedTransport(client, sheds=10**9)
    with pytest.raises(ServerOverloadedError):
        client.depends_batch([(1, 2)], "v")
    assert fake.now <= 0.5 + 0.2  # total sleeping bounded by the budget
    assert transport.calls < 20  # nowhere near the nominal 1001 attempts


# -- circuit breaker ------------------------------------------------------------


def test_breaker_opens_after_threshold_and_fast_fails():
    fake = _FakeTime()
    client = _offline_client(
        breaker_threshold=3,
        breaker_cooldown_s=10.0,
        clock=fake.clock,
        sleep=fake.sleep,
    )
    transport = _ShedTransport(client, sheds=10**9)
    for _ in range(3):
        with pytest.raises(ServerOverloadedError):
            client.depends_batch([(1, 2)], "v")
    calls_when_open = transport.calls
    # Open: calls fast-fail without touching the transport at all.
    with pytest.raises(CircuitOpenError) as info:
        client.depends_batch([(1, 2)], "v")
    assert transport.calls == calls_when_open
    assert info.value.retry_after_s > 0  # remaining cooldown
    assert info.value.queue_depth == 8  # last depth the server reported


def test_breaker_half_open_probe_reopens_or_closes():
    fake = _FakeTime()
    client = _offline_client(
        breaker_threshold=2,
        breaker_cooldown_s=10.0,
        clock=fake.clock,
        sleep=fake.sleep,
    )
    transport = _ShedTransport(client, sheds=3, answers=[True])
    for _ in range(2):
        with pytest.raises(ServerOverloadedError):
            client.depends_batch([(1, 2)], "v")
    with pytest.raises(CircuitOpenError):
        client.depends_batch([(1, 2)], "v")
    # Cooldown over: the next call is the half-open probe.  It sheds once
    # more, so the breaker re-opens immediately.
    fake.now += 11.0
    with pytest.raises(ServerOverloadedError):
        client.depends_batch([(1, 2)], "v")
    with pytest.raises(CircuitOpenError):
        client.depends_batch([(1, 2)], "v")
    # Second cooldown: this probe gets a real answer and the breaker closes.
    fake.now += 11.0
    assert client.depends_batch([(1, 2)], "v") == [True]
    assert client.depends_batch([(1, 2)], "v") == [True]  # closed for good


def test_breaker_disabled_never_fast_fails():
    fake = _FakeTime()
    client = _offline_client(
        breaker_threshold=None, clock=fake.clock, sleep=fake.sleep
    )
    transport = _ShedTransport(client, sheds=10**9)
    for _ in range(50):
        with pytest.raises(ServerOverloadedError) as info:
            client.depends_batch([(1, 2)], "v")
        assert not isinstance(info.value, CircuitOpenError)
    assert transport.calls == 50


def test_overload_knob_validation():
    with pytest.raises(ValueError, match="breaker_threshold"):
        _offline_client(breaker_threshold=0)
    with pytest.raises(ValueError, match="negative"):
        _offline_client(backoff_base_s=-0.1)
