"""Tests for the binary wire protocol (net/protocol.py)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    OP_DEPENDS,
    OP_VISIBLE,
    AnswersReply,
    ErrorReply,
    FrameAssembler,
    QueryRequest,
    ShedReply,
    StatsReply,
    StatsRequest,
    decode_reply,
    decode_request,
    encode_answers,
    encode_depends_request,
    encode_error,
    encode_shed,
    encode_stats_reply,
    encode_stats_request,
    encode_visible_request,
)

_LEN_PREFIX = 4


def _payload(frame: bytes) -> bytes:
    return frame[_LEN_PREFIX:]


# -- request round trips --------------------------------------------------------


def test_depends_request_round_trip():
    pairs = [(1, 2), (3, 4), (5, 6)]
    frame = encode_depends_request(7, "run-a", "audit", "se", pairs)
    request = decode_request(_payload(frame))
    assert isinstance(request, QueryRequest)
    assert request.op == OP_DEPENDS
    assert request.request_id == 7
    assert (request.run, request.view, request.variant) == ("run-a", "audit", "se")
    assert request.ids.shape == (3, 2)
    assert request.ids.tolist() == [[1, 2], [3, 4], [5, 6]]


def test_visible_request_round_trip():
    frame = encode_visible_request(9, "default", "audit", None, [10, 20, 30])
    request = decode_request(_payload(frame))
    assert request.op == OP_VISIBLE
    assert request.variant is None  # empty string on the wire = server default
    assert request.ids.tolist() == [10, 20, 30]


def test_empty_depends_batch_encodes():
    frame = encode_depends_request(1, "default", "v", None, [])
    request = decode_request(_payload(frame))
    assert request.ids.shape == (0, 2)


def test_depends_rejects_non_pair_shapes():
    with pytest.raises(SerializationError, match=r"\(n, 2\)"):
        encode_depends_request(1, "default", "v", None, [1, 2, 3])


def test_visible_rejects_nested_ids():
    with pytest.raises(SerializationError, match="flat"):
        encode_visible_request(1, "default", "v", None, [[1, 2]])


def test_stats_request_round_trip():
    request = decode_request(_payload(encode_stats_request(42)))
    assert isinstance(request, StatsRequest)
    assert request.request_id == 42


def test_unicode_names_survive_the_wire():
    frame = encode_visible_request(1, "Δrun", "видѣти", None, [1])
    request = decode_request(_payload(frame))
    assert (request.run, request.view) == ("Δrun", "видѣти")


# -- reply round trips ----------------------------------------------------------


def test_answers_round_trip_bit_packed():
    answers = [bool(int(b)) for b in "1011001110100"]  # 13: not byte-aligned
    frame = encode_answers(5, answers)
    # 13 bools fit two packed bytes: header + 2 payload bytes.
    assert len(_payload(frame)) == 9 + 2
    reply = decode_reply(_payload(frame))
    assert isinstance(reply, AnswersReply)
    assert reply.request_id == 5
    assert reply.answers == answers


def test_empty_answers_round_trip():
    reply = decode_reply(_payload(encode_answers(3, [])))
    assert reply.answers == []


def test_shed_round_trip():
    reply = decode_reply(_payload(encode_shed(8, 0.25, 4096)))
    assert isinstance(reply, ShedReply)
    assert (reply.request_id, reply.retry_after_s, reply.queue_depth) == (8, 0.25, 4096)


def test_error_round_trip_and_truncation():
    reply = decode_reply(_payload(encode_error(2, "ViewError", "unknown view 'x'")))
    assert isinstance(reply, ErrorReply)
    assert (reply.kind, reply.message) == ("ViewError", "unknown view 'x'")
    huge = decode_reply(_payload(encode_error(2, "E" * 5000, "m" * 100_000)))
    assert len(huge.kind.encode()) <= 1024
    assert len(huge.message.encode()) <= 65536


def test_stats_reply_round_trip():
    payload = {"status": "ok", "net": {"sheds": 0}, "exc": Exception("boom")}
    reply = decode_reply(_payload(encode_stats_reply(1, payload)))
    assert isinstance(reply, StatsReply)
    assert reply.payload["net"] == {"sheds": 0}
    assert reply.payload["exc"] == "boom"  # non-JSON values stringified


# -- malformed frames -----------------------------------------------------------


def test_unknown_request_opcode_rejected():
    frame = bytearray(_payload(encode_stats_request(1)))
    frame[0] = 0x7F
    with pytest.raises(SerializationError, match="opcode"):
        decode_request(bytes(frame))


def test_unknown_reply_opcode_rejected():
    with pytest.raises(SerializationError, match="opcode"):
        decode_reply(b"\x10\x00\x00\x00\x00")


def test_truncated_request_rejected():
    frame = _payload(encode_visible_request(1, "default", "v", None, [1, 2, 3]))
    with pytest.raises(SerializationError, match="truncated"):
        decode_request(frame[:-4])


def test_trailing_bytes_rejected():
    frame = _payload(encode_visible_request(1, "default", "v", None, [1]))
    with pytest.raises(SerializationError, match="trailing"):
        decode_request(frame + b"\x00")


def test_bad_utf8_rejected():
    frame = bytearray(_payload(encode_visible_request(1, "rr", "vv", None, [1])))
    header_end = 14  # _REQUEST.size: run bytes start here
    frame[header_end : header_end + 2] = b"\xff\xfe"
    with pytest.raises(SerializationError, match="UTF-8"):
        decode_request(bytes(frame))


def test_oversized_payload_refused_at_encode():
    ids = np.zeros(MAX_FRAME_BYTES // 8 + 16, dtype=np.int64)
    with pytest.raises(SerializationError, match="exceeds"):
        encode_visible_request(1, "default", "v", None, ids)


# -- the frame assembler --------------------------------------------------------


def test_assembler_reassembles_byte_by_byte():
    frames = [
        encode_visible_request(1, "default", "v", None, [1, 2]),
        encode_answers(1, [True, False]),
        encode_stats_request(2),
    ]
    stream = b"".join(frames)
    assembler = FrameAssembler()
    out = []
    for i in range(len(stream)):
        out.extend(assembler.feed(stream[i : i + 1]))
    assert out == [_payload(f) for f in frames]
    assert assembler.buffered == 0


def test_assembler_returns_multiple_frames_from_one_chunk():
    frames = [encode_stats_request(i) for i in range(5)]
    assembler = FrameAssembler()
    out = assembler.feed(b"".join(frames))
    assert [decode_request(p).request_id for p in out] == list(range(5))


def test_assembler_rejects_oversized_announcement():
    assembler = FrameAssembler(max_frame_bytes=64)
    with pytest.raises(SerializationError, match="64"):
        assembler.feed(b"\xff\xff\xff\x7f")


def test_assembler_keeps_partial_frames_buffered():
    frame = encode_visible_request(1, "default", "v", None, list(range(10)))
    assembler = FrameAssembler()
    assert assembler.feed(frame[:10]) == []
    assert assembler.buffered == 10
    (payload,) = assembler.feed(frame[10:])
    assert decode_request(payload).ids.tolist() == list(range(10))


def test_assembler_accepts_a_frame_at_exactly_the_protocol_bound():
    """A payload of exactly MAX_FRAME_BYTES is a legal (if huge) frame."""
    import struct

    from repro.net.protocol import MAX_FRAME_BYTES

    assembler = FrameAssembler()
    prefix = struct.pack("<I", MAX_FRAME_BYTES)
    assert assembler.feed(prefix) == []  # announcement alone: no rejection
    payload = bytes(MAX_FRAME_BYTES)
    assert assembler.feed(payload[: 1 << 20]) == []  # partial: still buffering
    (frame,) = assembler.feed(payload[1 << 20 :])
    assert len(frame) == MAX_FRAME_BYTES
    assert assembler.buffered == 0


def test_assembler_rejects_one_byte_over_the_protocol_bound():
    import struct

    from repro.net.protocol import MAX_FRAME_BYTES

    assembler = FrameAssembler()
    with pytest.raises(SerializationError, match="protocol bound"):
        # The announcement alone is enough: no payload byte is ever buffered.
        assembler.feed(struct.pack("<I", MAX_FRAME_BYTES + 1))
