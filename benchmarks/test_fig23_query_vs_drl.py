"""Figure 23: query time over coarse-grained views — FVL vs Matrix-Free FVL vs DRL."""

from repro.bench import fig23_query_time_vs_drl, sample_query_pairs
from repro.core import FVLVariant
from repro.model.projection import ViewProjection
from repro.workloads import random_view

from conftest import BENCH_RUN_SIZE, report


def test_fig23_regenerate(workload, benchmark):
    table = benchmark.pedantic(
        lambda: fig23_query_time_vs_drl(
            workload,
            run_size=BENCH_RUN_SIZE,
            n_queries=400,
            view_sizes={"small": 2, "medium": 8},
        ),
        rounds=1,
        iterations=1,
    )
    report(table)
    assert len(table.rows) == 2


def _prepare(workload, labeled_run):
    derivation, labeler = labeled_run
    view = random_view(workload.specification, 8, seed=77, mode="black", name="fig23")
    items = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(items, 200, seed=2)
    labels = [(labeler.label(d1), labeler.label(d2)) for d1, d2 in pairs]
    return view, pairs, labels


def test_query_full_fvl(workload, labeled_run, benchmark):
    view, _, labels = _prepare(workload, labeled_run)
    view_label = workload.scheme.label_view(view, FVLVariant.QUERY_EFFICIENT)
    benchmark(lambda: [workload.scheme.depends(l1, l2, view_label) for l1, l2 in labels])


def test_query_matrix_free_fvl(workload, labeled_run, benchmark):
    view, _, labels = _prepare(workload, labeled_run)
    view_label = workload.scheme.label_view_matrix_free(view)
    benchmark(lambda: [workload.scheme.depends(l1, l2, view_label) for l1, l2 in labels])


def test_query_drl(workload, labeled_run, benchmark):
    derivation, _ = labeled_run
    view, pairs, _ = _prepare(workload, labeled_run)
    drl_labeler = workload.drl.label_run(derivation, view)
    labels = [(drl_labeler.label(d1), drl_labeler.label(d2)) for d1, d2 in pairs]
    benchmark(lambda: [workload.drl.depends(l1, l2, view) for l1, l2 in labels])
