"""Table 1: qualitative impact of the synthetic factors on labeling performance."""

from repro.bench import table1_factors

from conftest import report


def test_table1_regenerate(benchmark):
    table = benchmark.pedantic(
        lambda: table1_factors(run_size=800, n_queries=100, workflow_size=10),
        rounds=1,
        iterations=1,
    )
    report(table)
    factors = table.column("factor")
    assert factors == [
        "workflow size",
        "module degree",
        "nesting depth",
        "recursion length",
    ]
    allowed = {"no impact", "low impact", "high impact"}
    for row in table.rows:
        assert set(row[1:]) <= allowed
    # Workflow size and module degree drive the view-label size (as in the paper).
    header = table.columns
    view_len_idx = header.index("view label length")
    assert table.rows[0][view_len_idx] != "no impact"
