"""Figure 17: average/maximum data-label length (bits) vs run size, FVL vs DRL."""

from repro.baselines import DRL_ORDER_HEADER_BITS
from repro.bench import fig17_data_label_length

from conftest import BENCH_RUN_SIZES, report


def test_fig17_regenerate(workload, benchmark):
    table = benchmark.pedantic(
        lambda: fig17_data_label_length(workload, run_sizes=BENCH_RUN_SIZES, samples=1),
        rounds=1,
        iterations=1,
    )
    report(table)
    fvl_avg = table.column("FVL-avg")
    drl_avg = table.column("DRL-avg")
    # Compact (logarithmic) labels: doubling the run adds only a few bits.
    assert fvl_avg[-1] - fvl_avg[0] < 20
    # DRL's per-label order header makes its labels longer by a constant.
    assert all(d - f == DRL_ORDER_HEADER_BITS for f, d in zip(fvl_avg, drl_avg))
