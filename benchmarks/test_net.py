"""Network serving extension: wire throughput vs client count.

Regenerates the network-tier experiment (see ``repro.bench.net``) and checks
its structural claims: every query crossed the socket inside a batch frame
(frames stay far below queries), the server coalesced those frames into
vectorised engine calls, and nothing was shed at steady state under an
amply-provisioned queue.  The qps numbers and the in-process/wire ratio
(acceptance target: within 3x of the in-process coalesced throughput at 16
clients) are *recorded* — in the printed table and in ``BENCH_serving.json``
via the bench-smoke CI step — but deliberately not asserted: this body also
runs under CI's ``--benchmark-disable`` smoke pass, which must stay
timing-independent.
"""

from repro.bench.net import net_throughput

from conftest import report

NET_RUN_SIZE = 1000
NET_QUERIES = 2000
NET_CLIENTS = (1, 4, 16)
NET_BATCH = 128


def test_net_throughput_regenerate(workload, benchmark):
    table = benchmark.pedantic(
        lambda: net_throughput(
            workload,
            run_size=NET_RUN_SIZE,
            n_queries=NET_QUERIES,
            client_counts=NET_CLIENTS,
            batch=NET_BATCH,
        ),
        rounds=1,
        iterations=1,
    )
    report(table)
    for clients, frames, sheds, mean_batch in zip(
        table.column("clients"),
        table.column("frames"),
        table.column("sheds"),
        table.column("mean_batch"),
    ):
        queries = frames * NET_BATCH  # upper bound: frames carry <= NET_BATCH
        assert frames < queries, "queries crossed the wire without batch framing"
        assert sheds == 0, (
            f"{sheds} shed(s) at {clients} clients under an amply-sized queue"
        )
        assert mean_batch >= NET_BATCH / 2, (
            f"~{mean_batch} queries per engine call at {clients} clients; "
            "frames are not reaching the scheduler as coalesced batches"
        )
