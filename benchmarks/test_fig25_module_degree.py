"""Figure 25: query time vs module input/output degree (synthetic family)."""

from repro.bench import fig25_module_degree

from conftest import report


def test_fig25_regenerate(benchmark):
    table = benchmark.pedantic(
        lambda: fig25_module_degree(
            degrees=(2, 6, 10), run_size=1200, workflow_size=10, n_queries=400
        ),
        rounds=1,
        iterations=1,
    )
    report(table)
    times = table.column("query_time_us")
    assert all(t > 0 for t in times)
    # Note: in this Python implementation the per-query interpreter overhead
    # dominates for small degrees, so the paper's linear growth only becomes
    # pronounced for larger matrices; see EXPERIMENTS.md.
