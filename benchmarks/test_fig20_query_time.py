"""Figure 20: query time vs run size for the three FVL variants."""

import random

from repro.bench import fig20_query_time, sample_query_pairs
from repro.core import FVLVariant
from repro.model.projection import ViewProjection

from conftest import report


def test_fig20_regenerate(workload, benchmark):
    table = benchmark.pedantic(
        lambda: fig20_query_time(workload, run_sizes=(500, 1000), n_queries=300),
        rounds=1,
        iterations=1,
    )
    report(table)
    for row in table.rows:
        _, space, default, query = row
        assert space >= query  # materialised tables answer faster than graph search


def _query_benchmark(workload, labeled_run, variant, benchmark):
    derivation, labeler = labeled_run
    view = workload.views({"medium": 8}, mode="grey", seed=3)["medium"]
    view_label = workload.scheme.label_view(view, variant)
    items = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(items, 200, seed=1)
    labels = [(labeler.label(d1), labeler.label(d2)) for d1, d2 in pairs]

    def run_all():
        for l1, l2 in labels:
            workload.scheme.depends(l1, l2, view_label)

    benchmark(run_all)


def test_query_default_variant(workload, labeled_run, benchmark):
    _query_benchmark(workload, labeled_run, FVLVariant.DEFAULT, benchmark)


def test_query_query_efficient_variant(workload, labeled_run, benchmark):
    _query_benchmark(workload, labeled_run, FVLVariant.QUERY_EFFICIENT, benchmark)


def test_query_space_efficient_variant(workload, labeled_run, benchmark):
    _query_benchmark(workload, labeled_run, FVLVariant.SPACE_EFFICIENT, benchmark)
