"""Figure 22: total data-label construction time vs number of views."""

from repro.bench import fig22_multiview_time

from conftest import BENCH_RUN_SIZE, report


def test_fig22_regenerate(workload, benchmark):
    table = benchmark.pedantic(
        lambda: fig22_multiview_time(workload, run_size=BENCH_RUN_SIZE, max_views=6),
        rounds=1,
        iterations=1,
    )
    report(table)
    fvl = table.column("FVL_ms")
    drl = table.column("DRL_ms")
    assert len(set(fvl)) == 1      # FVL labels once, whatever the number of views
    assert drl[-1] > drl[0]        # DRL cost accumulates per view
    # With several views the view-adaptive scheme is cheaper in total.
    assert fvl[-1] < drl[-1]
