"""Ingest extension: throughput, label/node memory and checkpoints.

Regenerates the ingest experiment (see ``repro.bench.ingest``) and checks the
structural claims of the columnar run at the largest benchmarked run size:
label memory an order of magnitude below the object representation, and the
node arena well below the object parse tree.  Both ratios are deterministic
(byte counts, no timing).  The construction speedup (target: >=5x) and the
checkpoint latencies are *recorded* — in the printed table and in
``BENCH_ingest.json`` via the bench-smoke CI step — but deliberately not
asserted: this body also runs under CI's ``--benchmark-disable`` smoke pass,
which must stay timing-independent; the non-timing enforcement that per-item
and per-node object construction cannot return is
``tests/store/test_alloc_guard.py``.
"""

from repro.bench.ingest import ingest_throughput

from conftest import BENCH_RUN_SIZES, report

INGEST_RUN_SIZES = BENCH_RUN_SIZES + (4000,)


def test_ingest_regenerate(workload, benchmark):
    table = benchmark.pedantic(
        lambda: ingest_throughput(workload, run_sizes=INGEST_RUN_SIZES, samples=3),
        rounds=1,
        iterations=1,
    )
    report(table)
    memory_ratio = table.column("memory_ratio")[-1]
    assert memory_ratio >= 10, (
        f"columnar label memory only {memory_ratio}x below the object "
        "representation at the largest run size (target: >=10x)"
    )
    tree_ratio = table.column("tree_memory_ratio")[-1]
    assert tree_ratio >= 2, (
        f"node arena only {tree_ratio}x below the object parse tree at the "
        "largest run size (target: >=2x)"
    )


def test_columnar_labeling_throughput(workload, benchmark):
    """Micro-benchmark: columnar-label one run of ~1000 items online."""
    derivation = workload.run(1000, 0)
    benchmark(lambda: workload.scheme.label_run(derivation))


def test_object_labeling_throughput(workload, benchmark):
    """Micro-benchmark: the legacy object representation on the same run."""
    derivation = workload.run(1000, 0)
    benchmark(lambda: workload.scheme.label_run(derivation, columnar=False))
