"""Figure 19: view-label length for small/medium/large views, three FVL variants."""

from repro.bench import fig19_view_label_length
from repro.core import FVLVariant

from conftest import report


def test_fig19_regenerate(workload, benchmark):
    table = benchmark.pedantic(
        lambda: fig19_view_label_length(workload), rounds=1, iterations=1
    )
    report(table)
    for row in table.rows:
        _, space, default, query = row
        assert space <= default <= query
        assert query < 64  # view labels stay tiny (a few KB at most)


def test_view_labeling_speed(workload, benchmark):
    """Micro-benchmark: statically label one medium view (query-efficient)."""
    view = workload.views({"medium": 8}, mode="grey", seed=3)["medium"]
    benchmark(lambda: workload.scheme.label_view(view, FVLVariant.QUERY_EFFICIENT))
