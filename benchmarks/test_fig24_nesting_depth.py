"""Figure 24: data-label length vs nesting depth (synthetic family)."""

from repro.bench import fig24_nesting_depth

from conftest import report


def test_fig24_regenerate(benchmark):
    table = benchmark.pedantic(
        lambda: fig24_nesting_depth(depths=(2, 4, 6), run_size=1200, workflow_size=10),
        rounds=1,
        iterations=1,
    )
    report(table)
    bits = table.column("FVL_avg_bits")
    # Deeper nesting means deeper compressed parse trees, hence longer labels.
    assert bits[-1] > bits[0]
