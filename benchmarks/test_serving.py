"""Serving extension: coalesced-batch throughput and warm-start latency.

Regenerates the serving experiment (see ``repro.bench.serving``) and checks
its structural claims: the micro-batching scheduler actually coalesces
concurrent singletons (mean batch well above one request per engine call)
and the persistent hot-matrix cache actually persists and reloads entries.
The throughput speedups (acceptance target: coalesced >= 5x the per-query
loop at 16 client threads, led by the space-efficient variant) and the
warm/cold latencies are *recorded* — in the printed tables and in
``BENCH_serving.json`` via the bench-smoke CI step — but deliberately not
asserted: this body also runs under CI's ``--benchmark-disable`` smoke pass,
which must stay timing-independent.
"""

from repro.bench.serving import serving_throughput, warm_start_latency

from conftest import report

SERVING_RUN_SIZE = 1000
SERVING_QUERIES = 2000


def test_serving_throughput_regenerate(workload, benchmark):
    table = benchmark.pedantic(
        lambda: serving_throughput(
            workload, run_size=SERVING_RUN_SIZE, n_queries=SERVING_QUERIES
        ),
        rounds=1,
        iterations=1,
    )
    report(table)
    for mean_batch in table.column("mean_batch"):
        assert mean_batch > 2, (
            f"scheduler served ~{mean_batch} requests per engine call; "
            "concurrent singletons are not being coalesced"
        )


def test_warm_start_regenerate(workload, benchmark):
    table = benchmark.pedantic(
        lambda: warm_start_latency(
            workload, run_size=SERVING_RUN_SIZE, n_queries=SERVING_QUERIES
        ),
        rounds=1,
        iterations=1,
    )
    report(table)
    for entries in table.column("entries"):
        assert entries > 0, "no hot matrices were persisted for the warm start"
