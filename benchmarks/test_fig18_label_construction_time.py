"""Figure 18: total data-label construction time vs run size, FVL vs DRL."""

from repro.bench import fig18_label_construction_time

from conftest import BENCH_RUN_SIZES, report


def test_fig18_regenerate(workload, benchmark):
    table = benchmark.pedantic(
        lambda: fig18_label_construction_time(
            workload, run_sizes=BENCH_RUN_SIZES, samples=1
        ),
        rounds=1,
        iterations=1,
    )
    report(table)
    fvl = table.column("FVL_ms")
    # Construction time grows with the run size (roughly linearly).
    assert fvl[-1] > fvl[0]


def test_fvl_labeling_throughput(workload, benchmark):
    """Micro-benchmark: label one run of ~1000 items online."""
    derivation = workload.run(1000, 0)
    benchmark(lambda: workload.scheme.label_run(derivation))
