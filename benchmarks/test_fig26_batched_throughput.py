"""Figure 26 (extension): batched engine throughput vs the one-pair API."""

from repro.bench import fig26_batched_query_throughput, sample_query_pairs
from repro.core import FVLVariant
from repro.engine import QueryEngine
from repro.model.projection import ViewProjection

from conftest import report


def test_fig26_regenerate(workload, benchmark):
    table = benchmark.pedantic(
        lambda: fig26_batched_query_throughput(workload, run_size=1000, n_queries=600),
        rounds=1,
        iterations=1,
    )
    report(table)
    rows = {row[0]: row for row in table.rows}
    # Only the space-efficient cliff is asserted on: its measured margin is
    # ~30x above the bound, so scheduler noise cannot flip it.  The other
    # variants run near parity with the one-pair loop and a timing assertion
    # on them would be CI flake bait (tests/engine/test_perf_guard.py holds
    # the structural guarantee without timing).
    assert rows[FVLVariant.SPACE_EFFICIENT.value][3] >= 10


def _engine_for(workload, labeled_run):
    derivation, _ = labeled_run
    engine = QueryEngine(workload.scheme)
    engine.add_run("default", derivation)
    return engine


def _batch_benchmark(workload, labeled_run, variant, benchmark):
    derivation, _ = labeled_run
    view = workload.views({"medium": 8}, mode="grey", seed=3)["medium"]
    items = sorted(ViewProjection(derivation.run, view).visible_items)
    pairs = sample_query_pairs(items, 200, seed=1)
    engine = _engine_for(workload, labeled_run)
    engine.depends_batch(pairs, view, variant=variant)  # warm the decode cache

    benchmark(lambda: engine.depends_batch(pairs, view, variant=variant))


def test_batched_default_variant(workload, labeled_run, benchmark):
    _batch_benchmark(workload, labeled_run, FVLVariant.DEFAULT, benchmark)


def test_batched_query_efficient_variant(workload, labeled_run, benchmark):
    _batch_benchmark(workload, labeled_run, FVLVariant.QUERY_EFFICIENT, benchmark)


def test_batched_space_efficient_variant(workload, labeled_run, benchmark):
    _batch_benchmark(workload, labeled_run, FVLVariant.SPACE_EFFICIENT, benchmark)
