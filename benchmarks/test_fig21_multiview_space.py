"""Figure 21: total data-label length per item vs number of views (FVL flat, DRL linear)."""

from repro.bench import fig21_multiview_space

from conftest import BENCH_RUN_SIZE, report


def test_fig21_regenerate(workload, benchmark):
    table = benchmark.pedantic(
        lambda: fig21_multiview_space(workload, run_size=BENCH_RUN_SIZE, max_views=6),
        rounds=1,
        iterations=1,
    )
    report(table)
    fvl = table.column("FVL")
    drl = table.column("DRL")
    assert len(set(fvl)) == 1          # view-adaptive: one label serves every view
    assert drl[-1] > drl[0] * 4        # DRL re-labels per view: roughly linear growth
    assert drl[-1] > fvl[-1]
