"""Shared fixtures for the benchmark suite.

Each benchmark module regenerates one figure or table of the paper's
Section 6.  To keep ``pytest benchmarks/ --benchmark-only`` laptop-friendly
the default workload sizes are small; the full experiment driver
(``python -m repro.bench --full``) uses paper-scale parameters.
"""

from __future__ import annotations

import pytest

from repro.bench import PreparedWorkload, prepare_bioaid
from repro.bench.reporting import format_table

BENCH_RUN_SIZE = 1000
BENCH_RUN_SIZES = (500, 1000, 2000)


@pytest.fixture(scope="session")
def workload() -> PreparedWorkload:
    return prepare_bioaid()


@pytest.fixture(scope="session")
def labeled_run(workload):
    return workload.labeled_run(BENCH_RUN_SIZE, 0)


def report(table) -> None:
    """Print one experiment table underneath the benchmark output."""
    print()
    print(format_table(table))
